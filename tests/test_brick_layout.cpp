#include <gtest/gtest.h>

#include "brick/bricked_tensor.hpp"

namespace brickdl {
namespace {

TEST(BrickGrid, CeilDivision) {
  const BrickGrid grid(Dims{1, 16, 20}, Dims{1, 4, 8});
  EXPECT_EQ(grid.grid, (Dims{1, 4, 3}));
  EXPECT_EQ(grid.num_bricks(), 12);
  EXPECT_EQ(grid.brick_elements(), 32);
}

TEST(BrickGrid, BrickOfAndOrigin) {
  const BrickGrid grid(Dims{1, 16, 16}, Dims{1, 4, 4});
  EXPECT_EQ(grid.brick_of(Dims{0, 5, 11}), (Dims{0, 1, 2}));
  EXPECT_EQ(grid.brick_origin(Dims{0, 1, 2}), (Dims{0, 4, 8}));
}

TEST(BrickGrid, ValidExtentClipsBoundary) {
  const BrickGrid grid(Dims{1, 10, 10}, Dims{1, 4, 4});
  EXPECT_EQ(grid.valid_extent(Dims{0, 0, 0}), (Dims{1, 4, 4}));
  EXPECT_EQ(grid.valid_extent(Dims{0, 2, 2}), (Dims{1, 2, 2}));
}

TEST(BrickMap, IdentityByDefault) {
  const BrickMap map(Dims{2, 3});
  for (i64 i = 0; i < 6; ++i) {
    EXPECT_EQ(map.physical(i), i);
    EXPECT_EQ(map.logical(i), i);
  }
}

TEST(BrickMap, ShuffledIsPermutation) {
  Rng rng(5);
  const BrickMap map = BrickMap::shuffled(Dims{4, 4}, rng);
  std::vector<bool> seen(16, false);
  for (i64 l = 0; l < 16; ++l) {
    const i64 p = map.physical(l);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 16);
    EXPECT_FALSE(seen[static_cast<size_t>(p)]);
    seen[static_cast<size_t>(p)] = true;
    EXPECT_EQ(map.logical(p), l);  // inverse consistency
  }
}

TEST(BrickInfo, SelfAndNeighbors) {
  const BrickGrid grid(Dims{1, 4, 4}, Dims{1, 2, 2});  // 1x2x2 brick grid? no: 2x2
  const BrickMap map(grid.grid);
  const BrickInfo info(grid, map);
  EXPECT_EQ(info.num_directions(), 27);  // 3^3 including batch dim

  const Dims zero = Dims::filled(3, 0);
  const i64 center = grid.grid.linear(Dims{0, 0, 0});
  EXPECT_EQ(info.neighbor(center, zero), center);

  // Right neighbor of (0,0,0) is (0,0,1).
  EXPECT_EQ(info.neighbor(center, Dims{0, 0, 1}),
            grid.grid.linear(Dims{0, 0, 1}));
  // Out-of-grid neighbors are -1.
  EXPECT_EQ(info.neighbor(center, Dims{0, -1, 0}), -1);
  EXPECT_EQ(info.neighbor(center, Dims{-1, 0, 0}), -1);
}

TEST(BrickInfo, AdjacencyFollowsShuffledMap) {
  const BrickGrid grid(Dims{1, 8, 8}, Dims{1, 4, 4});
  Rng rng(11);
  const BrickMap map = BrickMap::shuffled(grid.grid, rng);
  const BrickInfo info(grid, map);
  // For every logical brick, its physical slot's neighbor in +w direction
  // must be the physical slot of the logically adjacent brick.
  for (i64 l = 0; l < grid.num_bricks(); ++l) {
    const Dims g = grid.grid.unlinear(l);
    if (g[2] + 1 >= grid.grid[2]) continue;
    Dims right = g;
    right[2] += 1;
    EXPECT_EQ(info.neighbor(map.physical(l), Dims{0, 0, 1}),
              map.physical(grid.grid.linear(right)));
  }
}

TEST(BrickInfo, DirectionRoundTrip) {
  const BrickGrid grid(Dims{1, 4, 4}, Dims{1, 2, 2});
  const BrickMap map(grid.grid);
  const BrickInfo info(grid, map);
  for (int dir = 0; dir < info.num_directions(); ++dir) {
    EXPECT_EQ(info.direction_of(info.delta_of(dir)), dir);
  }
}

TEST(BrickedTensor, RoundTripIdentityMap) {
  Tensor src(Shape{2, 3, 8, 8});
  Rng rng(1);
  src.fill_random(rng);
  const BrickedTensor bricked =
      BrickedTensor::from_canonical(src, Dims{1, 4, 4});
  EXPECT_EQ(bricked.num_bricks(), 2 * 2 * 2);
  EXPECT_TRUE(allclose(src, bricked.to_canonical(), 0.0));
}

TEST(BrickedTensor, RoundTripNonMultipleSizesMasked) {
  Tensor src(Shape{1, 2, 10, 6});
  Rng rng(2);
  src.fill_random(rng);
  const BrickedTensor bricked =
      BrickedTensor::from_canonical(src, Dims{1, 4, 4});
  EXPECT_TRUE(allclose(src, bricked.to_canonical(), 0.0));
  // Masked padding inside boundary bricks must be zero.
  const BrickGrid& grid = bricked.grid();
  EXPECT_EQ(grid.grid, (Dims{1, 3, 2}));
}

TEST(BrickedTensor, RoundTripShuffledMap) {
  Tensor src(Shape{1, 4, 12, 12});
  Rng rng(3);
  src.fill_random(rng);
  Rng map_rng(17);
  const BrickGrid grid(Shape(src.dims()).blocked_dims(), Dims{1, 4, 4});
  const BrickedTensor bricked = BrickedTensor::from_canonical(
      src, Dims{1, 4, 4}, BrickMap::shuffled(grid.grid, map_rng));
  EXPECT_TRUE(allclose(src, bricked.to_canonical(), 0.0));
}

TEST(BrickedTensor, ElementAccessMatchesCanonical) {
  Tensor src(Shape{1, 3, 9, 7});
  Rng rng(4);
  src.fill_random(rng);
  BrickedTensor bricked = BrickedTensor::from_canonical(src, Dims{1, 4, 4});
  for (i64 c = 0; c < 3; ++c) {
    for (i64 h = 0; h < 9; ++h) {
      for (i64 w = 0; w < 7; ++w) {
        EXPECT_EQ(bricked.at(Dims{0, c, h, w}), src.at(Dims{0, c, h, w}));
      }
    }
  }
}

TEST(BrickedTensor, BrickViewAccess) {
  Tensor src(Shape{1, 2, 8, 8});
  Rng rng(5);
  src.fill_random(rng);
  BrickedTensor bricked = BrickedTensor::from_canonical(src, Dims{1, 4, 4});
  // Brick at grid (0,1,1) covers blocked [0, 4..8, 4..8].
  const i64 physical = bricked.map().physical_at(Dims{0, 1, 1});
  Brick brick = bricked.brick(physical);
  EXPECT_EQ(brick.channels(), 2);
  EXPECT_EQ(brick(1, Dims{0, 2, 3}), src.at(Dims{0, 1, 6, 7}));
}

TEST(BrickedTensor, ReadWindowGathersHaloAcrossBricks) {
  Tensor src(Shape{1, 1, 8, 8});
  for (i64 h = 0; h < 8; ++h) {
    for (i64 w = 0; w < 8; ++w) src.at(Dims{0, 0, h, w}) = h * 8.0f + w;
  }
  BrickedTensor bricked = BrickedTensor::from_canonical(src, Dims{1, 4, 4});
  // A 4x4 window centered on the brick corner spans 4 bricks.
  std::vector<float> scratch(16);
  bricked.read_window(Dims{0, 2, 2}, Dims{1, 4, 4}, scratch);
  for (i64 h = 0; h < 4; ++h) {
    for (i64 w = 0; w < 4; ++w) {
      EXPECT_EQ(scratch[static_cast<size_t>(h * 4 + w)],
                (h + 2) * 8.0f + (w + 2));
    }
  }
}

TEST(BrickedTensor, ReadWindowZeroFillsOutOfBounds) {
  Tensor src(Shape{1, 1, 4, 4});
  src.fill(5.0f);
  BrickedTensor bricked = BrickedTensor::from_canonical(src, Dims{1, 4, 4});
  std::vector<float> scratch(16);
  bricked.read_window(Dims{0, -2, -2}, Dims{1, 4, 4}, scratch);
  // Top-left 2x2 of the window is outside: zeros; rest is 5.
  for (i64 h = 0; h < 4; ++h) {
    for (i64 w = 0; w < 4; ++w) {
      const float expected = (h < 2 || w < 2) ? 0.0f : 5.0f;
      EXPECT_EQ(scratch[static_cast<size_t>(h * 4 + w)], expected);
    }
  }
}

TEST(BrickedTensor, WriteWindowRoundTrip) {
  BrickedTensor bricked(Shape{1, 2, 8, 8}, Dims{1, 4, 4});
  std::vector<float> scratch(2 * 9);
  for (size_t i = 0; i < scratch.size(); ++i) scratch[i] = static_cast<float>(i);
  bricked.write_window(Dims{0, 3, 3}, Dims{1, 3, 3}, scratch);
  std::vector<float> back(2 * 9, -1.0f);
  bricked.read_window(Dims{0, 3, 3}, Dims{1, 3, 3}, back);
  for (size_t i = 0; i < scratch.size(); ++i) EXPECT_EQ(back[i], scratch[i]);
}

TEST(BrickedTensor, WriteWindowIgnoresOutOfBounds) {
  BrickedTensor bricked(Shape{1, 1, 4, 4}, Dims{1, 4, 4});
  std::vector<float> scratch(16, 9.0f);
  bricked.write_window(Dims{0, 2, 2}, Dims{1, 4, 4}, scratch);  // spills past edge
  Tensor out = bricked.to_canonical();
  EXPECT_EQ(out.at(Dims{0, 0, 3, 3}), 9.0f);
  EXPECT_EQ(out.at(Dims{0, 0, 0, 0}), 0.0f);
}

}  // namespace
}  // namespace brickdl
