// Serving front-end suite (label `serve`, DESIGN.md §10).
//
// The core contract under test: N concurrent requests through the batching
// scheduler produce outputs *bit-identical* to N sequential solo engine
// runs — batching is a scheduling decision, never a numerics decision — and
// the serve.* metrics prove real coalescing happened. The failure-path tests
// reuse the §7 taxonomy: incompatible shapes and poisoned inputs are
// rejected alone with classifying Statuses, oversized batches split rather
// than blow the footprint rule, and an injected fault (PR 2 hooks) fails
// only the request that faults solo while its batch-mates succeed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "graph/rewrite.hpp"
#include "models/models.hpp"
#include "obs/events.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "testing/fault_injection.hpp"

namespace brickdl {
namespace {

using serve::RequestResult;
using serve::ServeOptions;
using serve::Server;

constexpr u64 kWeightSeed = 99;

Graph chain_model() { return build_conv_chain_2d(3, 1, 16, 2); }

/// Head + global classifier: exercises gap/dense/softmax so slicing covers
/// rank-2 [N, classes] outputs, not just spatial activations.
Graph classifier_model() {
  Graph g("classifier");
  int x = g.add_input("x", Shape{1, 3, 12, 12});
  x = g.add_conv(x, "c1", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  x = g.add_relu(x, "r1");
  x = g.add_pool(x, "p", PoolKind::kMax, Dims{2, 2}, Dims{2, 2});
  x = g.add_global_avg_pool(x, "gap");
  x = g.add_dense(x, "fc", 5);
  g.add_softmax(x, "sm");
  return g;
}

Tensor random_request(const Graph& model, i64 rows, u64 seed) {
  Dims dims = model.node(0).out_shape.dims;
  dims[0] = rows;
  Tensor t(dims);
  Rng rng(seed);
  t.fill_random(rng);
  return t;
}

/// Ground truth: a direct solo Engine::run_batched_checked on the rebatched
/// graph, with a fresh same-seed WeightStore (weights are (seed, node name)
/// keyed, so this matches the server's store bit-for-bit).
Tensor solo_reference(const Graph& model, const Tensor& input,
                      const EngineOptions& eopts) {
  Result<Graph> rebatched = rebatch_graph(model, input.dims()[0]);
  EXPECT_TRUE(rebatched.ok()) << rebatched.status().to_string();
  Graph graph = rebatched.take();
  WeightStore ws(kWeightSeed);
  Engine engine(graph, eopts);
  NumericBackend backend(graph, ws, 4);
  auto out = engine.run_batched_checked(backend, {&input});
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  return std::move(out.value()[0]);
}

i64 counter_value(const std::string& name) {
  return obs::metrics().counter(name).value();
}

}  // namespace

TEST(ServeBatching, StackSliceRoundTrip) {
  Rng rng(7);
  Tensor a(Dims{2, 3, 4}), b(Dims{1, 3, 4}), c(Dims{3, 3, 4});
  a.fill_random(rng);
  b.fill_random(rng);
  c.fill_random(rng);
  auto stacked = stack_batch({&a, &b, &c});
  ASSERT_TRUE(stacked.ok());
  EXPECT_EQ(stacked.value().dims(), (Dims{6, 3, 4}));
  EXPECT_EQ(max_abs_diff(slice_batch(stacked.value(), 0, 2), a), 0.0);
  EXPECT_EQ(max_abs_diff(slice_batch(stacked.value(), 2, 1), b), 0.0);
  EXPECT_EQ(max_abs_diff(slice_batch(stacked.value(), 3, 3), c), 0.0);

  Tensor bad(Dims{2, 5, 4});
  auto mismatch = stack_batch({&a, &bad});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kShapeMismatch);
}

TEST(ServeBatching, RebatchPreservesTopologyAndNames) {
  const Graph model = classifier_model();
  auto rebatched = rebatch_graph(model, 5);
  ASSERT_TRUE(rebatched.ok()) << rebatched.status().to_string();
  const Graph& g = rebatched.value();
  ASSERT_EQ(g.num_nodes(), model.num_nodes());
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.node(i).name, model.node(i).name);
    EXPECT_EQ(g.node(i).kind, model.node(i).kind);
    EXPECT_EQ(g.node(i).inputs, model.node(i).inputs);
    EXPECT_EQ(g.node(i).out_shape.dims[0], 5);
    for (int k = 1; k < g.node(i).out_shape.rank(); ++k) {
      EXPECT_EQ(g.node(i).out_shape.dims[k], model.node(i).out_shape.dims[k]);
    }
  }
  EXPECT_FALSE(rebatch_graph(model, 0).ok());
}

TEST(ServeBatching, SoloRequestBitIdenticalToDirectRun) {
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 4;
  opts.max_wait_us = 1000;
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  const Tensor input = random_request(model, 2, 11);
  RequestResult result = server.submit(input).get();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.batch_requests, 1);
  EXPECT_EQ(result.batch_rows, 2);
  EXPECT_EQ(max_abs_diff(result.output, solo_reference(model, input, opts.engine)),
            0.0);
}

// Acceptance: concurrent requests coalesce into multi-request engine runs
// whose per-request slices are bit-identical to sequential solo runs, for
// both merged strategies, with occupancy metrics proving real batching.
class ServeBatchingStrategies
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ServeBatchingStrategies, ConcurrentRequestsBitIdenticalToSolo) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 4;
  opts.max_wait_us = 500000;  // generous: flushes trigger on max_batch
  if (std::string(GetParam()) == "padded") {
    opts.engine.force_strategy = Strategy::kPadded;
  } else {
    opts.engine.force_strategy = Strategy::kMemoized;
    opts.engine.memo_parallel = true;  // real pool: TSan-meaningful
  }
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  const i64 rows[] = {1, 2, 1, 3, 1, 1, 2, 1};
  std::vector<Tensor> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(random_request(model, rows[i], 100 + static_cast<u64>(i)));
  }

  // Four submitter threads, two requests each — admission is the
  // thread-safe surface under test here.
  std::vector<std::future<RequestResult>> futures(8);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = t * 2; i < t * 2 + 2; ++i) {
          futures[static_cast<size_t>(i)] = server.submit(inputs[static_cast<size_t>(i)]);
        }
      });
    }
    for (auto& s : submitters) s.join();
  }

  for (int i = 0; i < 8; ++i) {
    RequestResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_EQ(result.output.dims()[0], rows[i]);
    EXPECT_EQ(
        max_abs_diff(result.output,
                     solo_reference(model, inputs[static_cast<size_t>(i)], opts.engine)),
        0.0)
        << "request " << i << " not bit-identical to its solo run";
  }

  EXPECT_EQ(counter_value("serve.completed"), 8);
  EXPECT_EQ(counter_value("serve.failed"), 0);
  // At least one genuinely multi-request batch formed.
  EXPECT_GE(obs::metrics().histogram("serve.batch_occupancy").max(), 2)
      << "no multi-request batch formed";
  EXPECT_GE(counter_value("serve.batches"), 2);
}

INSTANTIATE_TEST_SUITE_P(Strategies, ServeBatchingStrategies,
                         ::testing::Values("padded", "memoized"));

TEST(ServeBatching, GlobalClassifierOutputsSlicePerRequest) {
  const Graph model = classifier_model();
  ServeOptions opts;
  opts.max_batch = 3;
  opts.max_wait_us = 500000;
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  std::vector<Tensor> inputs;
  std::vector<std::future<RequestResult>> futures;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(random_request(model, 1 + i % 2, 40 + static_cast<u64>(i)));
    futures.push_back(server.submit(inputs.back()));
  }
  for (int i = 0; i < 3; ++i) {
    RequestResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_EQ(max_abs_diff(result.output,
                           solo_reference(model, inputs[static_cast<size_t>(i)],
                                          opts.engine)),
              0.0);
  }
}

TEST(ServeBatching, IncompatibleShapeRejectedWithNamedStatus) {
  obs::metrics().reset();
  const Graph model = chain_model();  // input [N, 2, 16, 16]
  ServeOptions opts;
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  Tensor wrong_channels(Dims{1, 3, 16, 16});
  RequestResult r1 = server.submit(wrong_channels).get();
  EXPECT_EQ(r1.status.code(), StatusCode::kShapeMismatch);
  EXPECT_NE(r1.status.message().find("[1x3x16x16]"), std::string::npos)
      << r1.status.message();

  Tensor wrong_rank(Dims{1, 2, 16});
  RequestResult r2 = server.submit(wrong_rank).get();
  EXPECT_EQ(r2.status.code(), StatusCode::kShapeMismatch);

  // Rejections are classified, not dropped: both resolved their futures and
  // were counted, nothing was enqueued for them.
  EXPECT_EQ(counter_value("serve.rejected"), 2);
  EXPECT_EQ(counter_value("serve.enqueued"), 0);
}

TEST(ServeBatching, PoisonedInputRejectedAloneBatchMatesSucceed) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 2;
  opts.max_wait_us = 500000;
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  Tensor good0 = random_request(model, 1, 50);
  Tensor poisoned = random_request(model, 1, 51);
  poisoned.flat(3) = std::numeric_limits<float>::quiet_NaN();
  Tensor good1 = random_request(model, 1, 52);

  auto f0 = server.submit(good0);
  auto fp = server.submit(poisoned);
  auto f1 = server.submit(good1);

  RequestResult rp = fp.get();
  EXPECT_EQ(rp.status.code(), StatusCode::kKernelFailure);
  EXPECT_NE(rp.status.message().find("non-finite"), std::string::npos);

  RequestResult r0 = f0.get();
  RequestResult r1 = f1.get();
  ASSERT_TRUE(r0.status.ok());
  ASSERT_TRUE(r1.status.ok());
  // The two healthy requests still coalesced into one batch around the
  // rejected one.
  EXPECT_EQ(r0.batch_requests, 2);
  EXPECT_EQ(r1.batch_requests, 2);
  EXPECT_EQ(max_abs_diff(r0.output, solo_reference(model, good0, opts.engine)),
            0.0);
  EXPECT_EQ(max_abs_diff(r1.output, solo_reference(model, good1, opts.engine)),
            0.0);
}

TEST(ServeBatching, OversizedBatchSplitsByRowCapAndCompletes) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 4;
  opts.max_wait_us = 500000;
  opts.max_batch_rows = 2;  // a 4-row stacked batch must split in half
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  std::vector<Tensor> inputs;
  std::vector<std::future<RequestResult>> futures;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(random_request(model, 1, 60 + static_cast<u64>(i)));
    futures.push_back(server.submit(inputs.back()));
  }
  for (int i = 0; i < 4; ++i) {
    RequestResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_EQ(result.batch_requests, 2);  // both halves ran as pairs
    EXPECT_EQ(result.batch_rows, 2);
    EXPECT_EQ(max_abs_diff(result.output,
                           solo_reference(model, inputs[static_cast<size_t>(i)],
                                          opts.engine)),
              0.0);
  }
  EXPECT_EQ(counter_value("serve.splits"), 1);
  EXPECT_EQ(counter_value("serve.batches"), 2);
}

TEST(ServeBatching, FootprintBudgetSplitsToSoloAndCompletes) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 4;
  opts.max_wait_us = 500000;
  opts.footprint_budget = 1;  // every merged plan is "oversized"
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  std::vector<Tensor> inputs;
  std::vector<std::future<RequestResult>> futures;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(random_request(model, 1, 70 + static_cast<u64>(i)));
    futures.push_back(server.submit(inputs.back()));
  }
  for (int i = 0; i < 4; ++i) {
    RequestResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_EQ(result.batch_requests, 1);  // split all the way down
    EXPECT_EQ(max_abs_diff(result.output,
                           solo_reference(model, inputs[static_cast<size_t>(i)],
                                          opts.engine)),
              0.0);
  }
  EXPECT_EQ(counter_value("serve.splits"), 3);       // 4 -> 2+2 -> 1+1+1+1
  EXPECT_EQ(counter_value("serve.oversized_solo"), 4);
}

TEST(ServeBatching, InjectedFaultFailsOneRequestBatchMatesSucceed) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 3;
  opts.max_wait_us = 500000;
  // No engine-level strategy retries: the injected kernel fault must surface
  // through the *serving* layer's per-request containment instead.
  opts.engine.graceful_fallback = false;

  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(random_request(model, 1, 80 + static_cast<u64>(i)));
  }
  // Clean ground truth before arming any fault.
  std::vector<Tensor> expected;
  for (const Tensor& input : inputs) {
    expected.push_back(solo_reference(model, input, opts.engine));
  }

  WeightStore ws(kWeightSeed);
  ScopedFaultInjection injection;
  // Fire 1 kills the coalesced batch run; fire 2 kills the first member's
  // solo re-run. Members re-run in queue order, so exactly request 0 fails
  // and its batch-mates complete.
  injection.injector().arm(
      {FaultKind::kKernelFailure, /*node_id=*/-1, /*skip=*/0, /*max_fires=*/2});

  Server server(model, ws, opts);
  std::vector<std::future<RequestResult>> futures;
  for (const Tensor& input : inputs) futures.push_back(server.submit(input));

  RequestResult r0 = futures[0].get();
  RequestResult r1 = futures[1].get();
  RequestResult r2 = futures[2].get();
  server.shutdown();

  EXPECT_EQ(r0.status.code(), StatusCode::kKernelFailure);
  ASSERT_TRUE(r1.status.ok()) << r1.status.to_string();
  ASSERT_TRUE(r2.status.ok()) << r2.status.to_string();
  EXPECT_EQ(r1.batch_requests, 1);  // served by its solo fallback run
  EXPECT_EQ(max_abs_diff(r1.output, expected[1]), 0.0);
  EXPECT_EQ(max_abs_diff(r2.output, expected[2]), 0.0);
  EXPECT_EQ(injection.injector().fires(FaultKind::kKernelFailure), 2);
  EXPECT_EQ(counter_value("serve.batch_failures"), 1);
  EXPECT_EQ(counter_value("serve.solo_fallbacks"), 1);
  EXPECT_EQ(counter_value("serve.failed"), 1);
  EXPECT_EQ(counter_value("serve.completed"), 2);
}

TEST(ServeBatching, ShutdownDrainsQueueAndRejectsLateSubmits) {
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 8;
  opts.max_wait_us = 10'000'000;  // would wait 10s — shutdown must not
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  std::vector<std::future<RequestResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(random_request(model, 1, 90 + static_cast<u64>(i))));
  }
  server.shutdown();
  for (auto& f : futures) {
    RequestResult result = f.get();
    EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  }
  RequestResult late = server.submit(random_request(model, 1, 99)).get();
  EXPECT_EQ(late.status.code(), StatusCode::kShuttingDown);
  EXPECT_TRUE(late.shed);
  EXPECT_NE(late.status.message().find("shutting down"), std::string::npos);
}

TEST(ServeBatching, PlanCacheAmortizesAcrossFlushes) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 2;
  opts.max_wait_us = 500000;
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  // Three flushes of the same stacked size: the §3.3 partition/strategy
  // planning runs once, then hits the cache.
  for (int round = 0; round < 3; ++round) {
    auto f0 = server.submit(random_request(model, 1, 200 + static_cast<u64>(round)));
    auto f1 = server.submit(random_request(model, 1, 300 + static_cast<u64>(round)));
    ASSERT_TRUE(f0.get().status.ok());
    ASSERT_TRUE(f1.get().status.ok());
  }
  EXPECT_EQ(counter_value("serve.plan_cache_misses"), 1);
  EXPECT_GE(counter_value("serve.plan_cache_hits"), 2);
}

TEST(ServeOptionsValidation, RejectsOutOfRangeKnobs) {
  ServeOptions opts;
  opts.max_batch = 0;
  EXPECT_EQ(validate_serve_options(opts).code(), StatusCode::kInvalidOptions);
  opts = ServeOptions{};
  opts.backend_workers = 0;
  EXPECT_EQ(validate_serve_options(opts).code(), StatusCode::kInvalidOptions);
  opts = ServeOptions{};
  opts.engine.memo_workers = 0;  // engine knobs validated transitively
  EXPECT_EQ(validate_serve_options(opts).code(), StatusCode::kInvalidOptions);
  opts = ServeOptions{};
  opts.max_queue_depth = -1;
  EXPECT_EQ(validate_serve_options(opts).code(), StatusCode::kInvalidOptions);
  opts = ServeOptions{};
  opts.default_deadline_us = -1;
  EXPECT_EQ(validate_serve_options(opts).code(), StatusCode::kInvalidOptions);
  opts = ServeOptions{};
  opts.breaker_failures = -1;
  EXPECT_EQ(validate_serve_options(opts).code(), StatusCode::kInvalidOptions);
  opts = ServeOptions{};
  opts.breaker_cooldown = 0;
  EXPECT_EQ(validate_serve_options(opts).code(), StatusCode::kInvalidOptions);
  EXPECT_TRUE(validate_serve_options(ServeOptions{}).ok());
}

// ---- Overload / chaos suite (DESIGN.md §12) ----
//
// Determinism recipe: max_batch = 1 serializes the scheduler, and an armed
// kBatchStall fault makes each batch execution sleep a fixed wall-clock
// interval before running — so the test controls exactly how long requests
// sit in the queue, independent of machine speed or sanitizer slowdown.

namespace {

/// Spin until the scheduler has popped everything (depth 0) — i.e. the
/// in-flight batch is executing (or stalled in the injected fault).
void wait_for_empty_queue(Server& server) {
  while (server.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace

TEST(ServeOverload, BoundedAdmissionShedsWithNamedStatusAndStaysBitIdentical) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 1;  // serialize: one request per batch
  opts.max_wait_us = 0;
  opts.max_queue_depth = 4;
  WeightStore ws(kWeightSeed);

  ScopedFaultInjection injection;
  FaultSpec stall;
  stall.kind = FaultKind::kBatchStall;
  stall.max_fires = -1;
  stall.delay_us = 150'000;  // every batch sleeps 150 ms before running
  injection.injector().arm(stall);

  Server server(model, ws, opts);

  // Blocker: admitted, popped, now stalled in execution — the queue is empty
  // and the scheduler is busy for 150 ms.
  Tensor blocker_input = random_request(model, 1, 500);
  auto blocker = server.submit(blocker_input);
  wait_for_empty_queue(server);

  // 4x overload burst: 8 requests against a queue of 4. Exactly 4 are
  // admitted; the rest are refused at submit() with the named status (no
  // deadlines anywhere, so EDF eviction can never prefer a newcomer).
  std::vector<Tensor> inputs;
  std::vector<std::future<RequestResult>> futures;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(random_request(model, 1, 510 + static_cast<u64>(i)));
    futures.push_back(server.submit(inputs.back()));
    EXPECT_LE(server.queue_depth(), opts.max_queue_depth)
        << "queue exceeded max_queue_depth";
  }

  int admitted = 0;
  int shed = 0;
  for (int i = 0; i < 8; ++i) {
    RequestResult result = futures[static_cast<size_t>(i)].get();
    if (result.status.ok()) {
      ++admitted;
      // Admission pressure must never change numerics: every served
      // request is still bit-identical to its solo run.
      EXPECT_EQ(max_abs_diff(result.output,
                             solo_reference(model, inputs[static_cast<size_t>(i)],
                                            opts.engine)),
                0.0);
    } else {
      ++shed;
      EXPECT_EQ(result.status.code(), StatusCode::kOverloaded);
      EXPECT_TRUE(result.shed);
      EXPECT_NE(result.status.message().find("queue at capacity"),
                std::string::npos);
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 4);
  EXPECT_TRUE(blocker.get().status.ok());

  server.shutdown();
  EXPECT_EQ(counter_value("serve.shed.overload"), 4);
  EXPECT_EQ(counter_value("serve.rejected"), 4);
  EXPECT_EQ(counter_value("serve.completed"), 5);
  // Satellite: the depth gauge is updated on every queue mutation, so after
  // a full drain it reads exactly zero.
  EXPECT_EQ(obs::metrics().gauge("serve.depth").value(), 0.0);
}

TEST(ServeOverload, ExpiredDeadlineShedsWithoutExecuting) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 1;
  opts.max_wait_us = 0;
  WeightStore ws(kWeightSeed);

  ScopedFaultInjection injection;
  FaultSpec stall;
  stall.kind = FaultKind::kBatchStall;
  stall.max_fires = 1;  // only the blocker's batch stalls
  stall.delay_us = 300'000;
  injection.injector().arm(stall);

  Server server(model, ws, opts);
  auto blocker = server.submit(random_request(model, 1, 600));
  wait_for_empty_queue(server);

  // 50 ms deadline against a 300 ms stall: the deadline is long gone by the
  // time the scheduler gets to this request, so it must be shed *without
  // executing* — serve.batches stays at the blocker's 1.
  auto doomed = server.submit(random_request(model, 1, 601),
                              /*deadline_us=*/50'000);
  RequestResult result = doomed.get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.shed);
  EXPECT_NE(result.status.message().find("deadline expired"),
            std::string::npos);
  EXPECT_TRUE(blocker.get().status.ok());

  server.shutdown();
  EXPECT_EQ(counter_value("serve.shed.deadline"), 1);
  EXPECT_EQ(counter_value("serve.batches"), 1) << "shed request executed";
  EXPECT_EQ(counter_value("serve.completed"), 1);
  EXPECT_EQ(obs::metrics().gauge("serve.depth").value(), 0.0);
}

TEST(ServeOverload, EdfEvictionPrefersNewcomerWithMoreSlack) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 1;
  opts.max_wait_us = 0;
  opts.max_queue_depth = 2;
  WeightStore ws(kWeightSeed);

  ScopedFaultInjection injection;
  FaultSpec stall;
  stall.kind = FaultKind::kBatchStall;
  stall.max_fires = -1;
  stall.delay_us = 250'000;
  injection.injector().arm(stall);

  Server server(model, ws, opts);
  auto blocker = server.submit(random_request(model, 1, 700));
  wait_for_empty_queue(server);

  // Queue fills with a 30 ms and a 60 ms deadline.
  auto fa = server.submit(random_request(model, 1, 701), 30'000);
  auto fb = server.submit(random_request(model, 1, 702), 60'000);
  EXPECT_EQ(server.queue_depth(), 2);

  // A 5 s newcomer has far more slack than the queued 30 ms request, so the
  // 30 ms one (least likely to be served in time) is evicted for it.
  auto fc = server.submit(random_request(model, 1, 703), 5'000'000);
  RequestResult ra = fa.get();  // resolved synchronously by the eviction
  EXPECT_EQ(ra.status.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(ra.shed);
  EXPECT_NE(ra.status.message().find("took the queue slot"),
            std::string::npos);
  EXPECT_EQ(server.queue_depth(), 2);

  // A 1 ms newcomer has *less* slack than anything queued: refused, queue
  // untouched.
  RequestResult rd =
      server.submit(random_request(model, 1, 704), 1'000).get();
  EXPECT_EQ(rd.status.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(rd.shed);
  EXPECT_NE(rd.status.message().find("no queued request has an earlier"),
            std::string::npos);
  EXPECT_EQ(server.queue_depth(), 2);

  // The 60 ms request expires during the blocker's 250 ms stall and is shed
  // at flush; the 5 s one survives the stall and is served.
  EXPECT_TRUE(blocker.get().status.ok());
  EXPECT_EQ(fb.get().status.code(), StatusCode::kDeadlineExceeded);
  RequestResult rc = fc.get();
  EXPECT_TRUE(rc.status.ok()) << rc.status.to_string();

  server.shutdown();
  EXPECT_EQ(counter_value("serve.shed.overload"), 2);  // eviction + refusal
  EXPECT_EQ(counter_value("serve.rejected"), 1);       // only the refusal
  EXPECT_EQ(obs::metrics().gauge("serve.depth").value(), 0.0);
}

TEST(ServeOverload, BreakerOpensRoutesDegradedAndRecoversViaProbe) {
  obs::metrics().reset();
  // 20x20x3: large enough that the 1-row plan stays merged (the 16x16 chain
  // model hits the brick model's vendor fallback at 1 row, which would leave
  // no memoized subgraph for the stall to poison).
  const Graph model = build_conv_chain_2d(3, 1, 20, 3);
  ServeOptions opts;
  opts.max_batch = 1;
  opts.max_wait_us = 0;
  opts.breaker_failures = 2;  // K: open after 2 consecutive degraded runs
  opts.breaker_cooldown = 2;  // N: probe after 2 degraded-tier runs
  // Tier 0 plans memoized; an armed unlimited worker stall makes every
  // memoized attempt fail, so each tier-0 run walks the §7 chain to padded
  // (degraded but served). The breaker's tier-1 engine forces padded, which
  // runs clean — no walk.
  opts.engine.partition.cost_aware = false;  // merge even at test scale
  opts.engine.force_strategy = Strategy::kMemoized;
  opts.engine.memo_workers = 4;
  opts.engine.memo_parallel = false;         // deterministic stall detection
  opts.engine.memo_watchdog = {64, 200};
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  auto serve_one = [&](u64 seed) {
    RequestResult r = server.submit(random_request(model, 1, seed)).get();
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  };
  auto fallbacks = [] { return counter_value("engine.fallbacks"); };

  {
    ScopedFaultInjection injection;
    FaultSpec stall;
    stall.kind = FaultKind::kWorkerStall;
    stall.max_fires = -1;
    injection.injector().arm(stall);

    // Runs 1-2: closed breaker, each run walks memoized -> padded.
    serve_one(800);
    serve_one(801);
    EXPECT_EQ(counter_value("serve.breaker.opens"), 1);
    const i64 walks_while_closed = fallbacks();
    EXPECT_GE(walks_while_closed, 2);
    // A single run walks the chain once per merged subgraph.
    const i64 walks_per_run = walks_while_closed / 2;

    // Runs 3-4: breaker open — routed straight to the padded tier. The
    // acceptance criterion: one degradation walk per breaker cycle, not one
    // per request, so the fallback counter must not move here.
    serve_one(802);
    serve_one(803);
    EXPECT_EQ(fallbacks(), walks_while_closed)
        << "breaker-open runs still walked the degradation chain";

    // Run 5: cooldown elapsed -> half-open probe of the planned tier. The
    // stall is still armed, so the probe walks the chain once and re-opens.
    serve_one(804);
    EXPECT_EQ(counter_value("serve.breaker.probes"), 1);
    EXPECT_EQ(counter_value("serve.breaker.closes"), 0);
    EXPECT_EQ(fallbacks(), walks_while_closed + walks_per_run);

    // Runs 6-7: re-opened — degraded tier again, still no walks.
    serve_one(805);
    serve_one(806);
    EXPECT_EQ(fallbacks(), walks_while_closed + walks_per_run);
  }  // stall disarmed: the planned tier is healthy again

  // Run 8: next probe succeeds cleanly -> breaker closes.
  serve_one(807);
  EXPECT_EQ(counter_value("serve.breaker.probes"), 2);
  EXPECT_EQ(counter_value("serve.breaker.closes"), 1);

  // Run 9: closed again, planned tier serves clean (no walk).
  const i64 walks_after_close = counter_value("engine.fallbacks");
  serve_one(808);
  EXPECT_EQ(counter_value("engine.fallbacks"), walks_after_close);
  EXPECT_EQ(counter_value("serve.breaker.opens"), 1)
      << "breaker re-opened after recovery";
  server.shutdown();
  EXPECT_EQ(counter_value("serve.failed"), 0);
}

TEST(ServeOverload, ShutdownDrainDeadlineFailsRemainingWithNamedStatus) {
  obs::metrics().reset();
  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 1;
  opts.max_wait_us = 0;
  WeightStore ws(kWeightSeed);

  ScopedFaultInjection injection;
  FaultSpec stall;
  stall.kind = FaultKind::kBatchStall;
  stall.max_fires = -1;
  stall.delay_us = 200'000;
  injection.injector().arm(stall);

  Server server(model, ws, opts);
  auto in_flight = server.submit(random_request(model, 1, 900));
  wait_for_empty_queue(server);

  std::vector<std::future<RequestResult>> queued;
  for (int i = 0; i < 5; ++i) {
    queued.push_back(server.submit(random_request(model, 1, 901 + static_cast<u64>(i))));
  }

  // Drain deadline far shorter than the in-flight batch's stall: the
  // in-flight request still completes (in-flight work is never abandoned),
  // but everything queued behind it fails with the named status.
  server.shutdown(/*drain_deadline_us=*/10'000);

  RequestResult first = in_flight.get();
  EXPECT_TRUE(first.status.ok()) << first.status.to_string();
  for (auto& f : queued) {
    RequestResult r = f.get();  // shutdown() joined: resolved, no blocking
    EXPECT_EQ(r.status.code(), StatusCode::kShuttingDown);
    EXPECT_TRUE(r.shed);
    EXPECT_NE(r.status.message().find("drain deadline"), std::string::npos);
  }
  EXPECT_EQ(counter_value("serve.shed.shutdown"), 5);
  EXPECT_EQ(counter_value("serve.completed"), 1);
  EXPECT_EQ(obs::metrics().gauge("serve.depth").value(), 0.0);
}

// ------------------------------------------------ Serving telemetry (§13)

TEST(ServeTelemetry, TraceLinksRequestsAcrossStagesByFlowId) {
  obs::metrics().reset();
  obs::events().clear();
  obs::Tracer::instance().clear();
  obs::Tracer::instance().set_enabled(true);

  const Graph model = chain_model();
  ServeOptions opts;
  opts.max_batch = 4;
  opts.max_wait_us = 2000;
  opts.engine.trace = true;
  constexpr int kRequests = 6;
  WeightStore ws(kWeightSeed);
  {
    Server server(model, ws, opts);
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(server.submit(
          random_request(model, 1, 700 + static_cast<u64>(i))));
    }
    for (auto& f : futures) {
      RequestResult r = f.get();
      ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    }
    server.shutdown();
  }
  obs::Tracer::instance().set_enabled(false);

  const obs::Json trace = obs::Tracer::instance().export_chrome_trace();
  ASSERT_TRUE(obs::validate_chrome_trace(trace).ok())
      << obs::validate_chrome_trace(trace).to_string();

  // Every served request must leave a complete flow chain keyed by its
  // request id — start in the flush span ('s'), step in the engine batch
  // span ('t'), finish alongside its resolution ('f') — plus a retroactive
  // queue-wait span tagged {"req": id}. Request ids are assigned densely
  // from 0 in submit order.
  std::map<i64, std::set<char>> flows;
  std::set<i64> queue_spans;
  for (const obs::Json& e : trace.find("traceEvents")->elements()) {
    const std::string& ph = e.find("ph")->str();
    if (ph == "s" || ph == "t" || ph == "f") {
      ASSERT_NE(e.find("id"), nullptr);
      flows[e.find("id")->integer()].insert(ph[0]);
    } else if (ph == "X" &&
               e.find("name")->str().rfind("queue:req", 0) == 0) {
      const obs::Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("req"), nullptr);
      queue_spans.insert(args->find("req")->integer());
    }
  }
  const std::set<char> full_chain{'s', 't', 'f'};
  for (i64 id = 0; id < kRequests; ++id) {
    EXPECT_EQ(flows[id], full_chain) << "request " << id;
    EXPECT_TRUE(queue_spans.count(id)) << "request " << id;
  }
}

TEST(ServeTelemetry, FlightRecordPerBreakerOpenValidatesSchema) {
  obs::metrics().reset();
  obs::events().clear();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "brickdl_serve_flight_test";
  std::filesystem::remove_all(dir);
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.reset();
  obs::FlightRecorder::Options fopts;
  fopts.dir = dir.string();
  recorder.configure(fopts);

  // Same chaos recipe as BreakerOpensRoutesDegradedAndRecoversViaProbe: an
  // armed worker stall degrades every tier-0 run until the breaker opens.
  const Graph model = build_conv_chain_2d(3, 1, 20, 3);
  ServeOptions opts;
  opts.max_batch = 1;
  opts.max_wait_us = 0;
  opts.breaker_failures = 2;
  opts.breaker_cooldown = 2;
  opts.engine.partition.cost_aware = false;
  opts.engine.force_strategy = Strategy::kMemoized;
  opts.engine.memo_workers = 4;
  opts.engine.memo_parallel = false;
  opts.engine.memo_watchdog = {64, 200};
  WeightStore ws(kWeightSeed);
  Server server(model, ws, opts);

  auto serve_one = [&](u64 seed) {
    RequestResult r = server.submit(random_request(model, 1, seed)).get();
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  };

  {
    ScopedFaultInjection injection;
    FaultSpec stall;
    stall.kind = FaultKind::kWorkerStall;
    stall.max_fires = -1;
    injection.injector().arm(stall);
    serve_one(820);  // degraded walk -> one kDegradedRun record
    serve_one(821);  // degraded walk -> breaker opens -> kBreakerOpen record
    serve_one(822);  // breaker open: degraded tier runs clean, no record
    serve_one(823);
  }
  serve_one(824);  // cooled down: probe runs clean -> breaker closes
  server.shutdown();

  const i64 opens = counter_value("serve.breaker.opens");
  ASSERT_EQ(opens, 1);
  EXPECT_EQ(counter_value("serve.breaker.closes"), 1);
  EXPECT_EQ(counter_value("serve.failed"), 0);

  // The event log saw exactly one open and one close.
  size_t open_events = 0, close_events = 0;
  for (const obs::EventRecord& r : obs::events().snapshot_last(4096)) {
    if (r.kind == obs::ServeEvent::kBreakerOpen) ++open_events;
    if (r.kind == obs::ServeEvent::kBreakerClose) ++close_events;
  }
  EXPECT_EQ(open_events, 1u);
  EXPECT_EQ(close_events, 1u);

  // Exactly one flight record per breaker open, every record on disk parses
  // and validates against brickdl-flight-v1.
  size_t breaker_records = 0, total_records = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    ++total_records;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << name;
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<obs::Json> doc = obs::Json::parse(buffer.str());
    ASSERT_TRUE(doc.ok()) << name << ": " << doc.status().to_string();
    const Status valid = obs::validate_flight_record(doc.value());
    ASSERT_TRUE(valid.ok()) << name << ": " << valid.to_string();
    if (name.find("breaker.open") != std::string::npos) {
      ++breaker_records;
      EXPECT_EQ(doc.value().find("trigger")->str(), "breaker.open");
      // The record's event tail carries the open itself.
      bool saw_open = false;
      for (const obs::Json& e : doc.value().find("events")->elements()) {
        if (e.find("event")->str() == "breaker.open") saw_open = true;
      }
      EXPECT_TRUE(saw_open);
    }
  }
  EXPECT_EQ(breaker_records, static_cast<size_t>(opens));
  EXPECT_GE(total_records, breaker_records + 1);  // plus degraded-run dumps
  EXPECT_EQ(recorder.records_written(), total_records);

  recorder.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace brickdl
