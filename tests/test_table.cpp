#include <gtest/gtest.h>

#include "util/table.hpp"

namespace brickdl {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Every rendered line has the same length (alignment).
  size_t expected = out.find('\n');
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

TEST(TextTable, ShortRowsPadEmpty) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_NE(table.render().find("only-one"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::num(1.0, 1), "1.0");
  EXPECT_EQ(TextTable::num(-0.5, 2), "-0.50");
}

TEST(Bars, ScaleToLongestBar) {
  std::vector<Bar> bars;
  bars.push_back({"half", {{"x", 0.5, '#'}}});
  bars.push_back({"full", {{"x", 1.0, '#'}}});
  const std::string out = render_bars(bars, 20);
  // The full bar has twice the glyphs of the half bar.
  const size_t half_count =
      static_cast<size_t>(std::count(out.begin(), out.begin() +
                                     static_cast<long>(out.find('\n')), '#'));
  EXPECT_EQ(half_count, 10u);
  EXPECT_NE(out.find("####################"), std::string::npos);
}

TEST(Bars, SegmentsStackInOrder) {
  std::vector<Bar> bars;
  bars.push_back({"ab", {{"first", 0.5, 'A'}, {"second", 0.5, 'B'}}});
  const std::string out = render_bars(bars, 10);
  EXPECT_NE(out.find("AAAAABBBBB"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("A=first"), std::string::npos);
}

TEST(Bars, ZeroTotalsDoNotDivideByZero) {
  std::vector<Bar> bars;
  bars.push_back({"empty", {{"x", 0.0, '#'}}});
  EXPECT_NO_THROW(render_bars(bars, 10));
}

TEST(Bars, UnitSuffixPrinted) {
  std::vector<Bar> bars;
  bars.push_back({"b", {{"x", 2.0, '#'}}});
  const std::string out = render_bars(bars, 10, "ms");
  EXPECT_NE(out.find("2.000 ms"), std::string::npos);
}

}  // namespace
}  // namespace brickdl
