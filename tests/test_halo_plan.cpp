#include <gtest/gtest.h>

#include "core/halo_plan.hpp"
#include "models/models.hpp"

namespace brickdl {
namespace {

/// Chain of two 3x3 unit-stride convs — the Fig. 4 example.
struct TwoConv {
  Graph g;
  Subgraph sg;
};

TwoConv two_conv_chain(i64 spatial = 32) {
  TwoConv t;
  int x = t.g.add_input("x", Shape{1, 8, spatial, spatial});
  const int c1 = t.g.add_conv(x, "c1", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  const int c2 = t.g.add_conv(c1, "c2", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  t.sg.nodes = {c1, c2};
  t.sg.external_inputs = {x};
  return t;
}

TEST(SubgraphValidate, AcceptsChain) {
  TwoConv t = two_conv_chain();
  EXPECT_NO_THROW(validate_subgraph(t.g, t.sg));
}

TEST(SubgraphValidate, RejectsExternalConsumerOfInterior) {
  Graph g;
  int x = g.add_input("x", Shape{1, 4, 16, 16});
  const int c1 = g.add_conv(x, "c1", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  const int r1 = g.add_relu(c1, "r1");
  g.add_relu(c1, "external_branch");  // c1 consumed outside too
  Subgraph sg;
  sg.nodes = {c1, r1};
  sg.external_inputs = {x};
  EXPECT_THROW(validate_subgraph(g, sg), Error);
}

TEST(SubgraphValidate, RejectsMissingExternalInput) {
  TwoConv t = two_conv_chain();
  t.sg.external_inputs.clear();
  EXPECT_THROW(validate_subgraph(t.g, t.sg), Error);
}

TEST(HaloPlan, Fig4WindowGrowth) {
  // Paper Fig. 4: for a Bh x Bw output brick of conv2, conv1 must produce
  // (Bh + 2px) x (Bw + 2py) and the input gather is (Bh + 4px) x (Bw + 4py),
  // with px = py = 1 for 3x3 kernels.
  TwoConv t = two_conv_chain();
  const HaloPlan plan(t.g, t.sg, Dims{1, 8, 8});
  const auto windows = plan.windows_for_brick(Dims{0, 1, 1});

  const auto& w_c2 = windows.at(t.sg.nodes[1]);
  EXPECT_EQ(w_c2.lo, (Dims{0, 8, 8}));
  EXPECT_EQ(w_c2.extent, (Dims{1, 8, 8}));

  const auto& w_c1 = windows.at(t.sg.nodes[0]);
  EXPECT_EQ(w_c1.lo, (Dims{0, 7, 7}));
  EXPECT_EQ(w_c1.extent, (Dims{1, 10, 10}));

  const auto& w_in = windows.at(t.sg.external_inputs[0]);
  EXPECT_EQ(w_in.lo, (Dims{0, 6, 6}));
  EXPECT_EQ(w_in.extent, (Dims{1, 12, 12}));
}

TEST(HaloPlan, TerminalBrickClippedAtBoundary) {
  TwoConv t = two_conv_chain(20);  // 20 with brick 8 -> last brick extent 4
  const HaloPlan plan(t.g, t.sg, Dims{1, 8, 8});
  EXPECT_EQ(plan.terminal_grid(), (Dims{1, 3, 3}));
  const auto windows = plan.windows_for_brick(Dims{0, 2, 2});
  EXPECT_EQ(windows.at(t.sg.nodes[1]).extent, (Dims{1, 4, 4}));
}

TEST(HaloPlan, PointwiseChainHasNoGrowth) {
  Graph g;
  int x = g.add_input("x", Shape{1, 8, 32, 32});
  const int r1 = g.add_relu(x, "r1");
  const int s1 = g.add_sigmoid(r1, "s1");
  Subgraph sg;
  sg.nodes = {r1, s1};
  sg.external_inputs = {x};
  const HaloPlan plan(g, sg, Dims{1, 8, 8});
  EXPECT_NEAR(plan.padding_growth(), 0.0, 1e-9);
  const auto windows = plan.windows_for_brick(Dims{0, 0, 0});
  EXPECT_EQ(windows.at(r1).extent, (Dims{1, 8, 8}));
  EXPECT_EQ(windows.at(x).extent, (Dims{1, 8, 8}));
}

TEST(HaloPlan, DeltaGrowsWithDepthAndShrinkingBricks) {
  // More layers -> larger Δ; smaller bricks -> larger Δ (§3.3.2's tradeoff).
  Graph g;
  int x = g.add_input("x", Shape{1, 8, 64, 64});
  std::vector<int> chain;
  int cur = x;
  for (int i = 0; i < 4; ++i) {
    cur = g.add_conv(cur, "c" + std::to_string(i), Dims{3, 3}, 8, Dims{1, 1},
                     Dims{1, 1});
    chain.push_back(cur);
  }
  Subgraph two{{chain[0], chain[1]}, {x}, true};
  Subgraph four{{chain[0], chain[1], chain[2], chain[3]}, {x}, true};
  const double delta_two = HaloPlan(g, two, Dims{1, 8, 8}).padding_growth();
  const double delta_four = HaloPlan(g, four, Dims{1, 8, 8}).padding_growth();
  EXPECT_GT(delta_four, delta_two);
  EXPECT_GT(delta_two, 0.0);

  const double delta_small = HaloPlan(g, four, Dims{1, 4, 4}).padding_growth();
  const double delta_large = HaloPlan(g, four, Dims{1, 16, 16}).padding_growth();
  EXPECT_GT(delta_small, delta_four);
  EXPECT_LT(delta_large, delta_four);
}

TEST(HaloPlan, ResidualBlockUnionWindows) {
  // x -> conv -> relu -> add(x) : x's window must cover both the conv halo
  // and the add's identity window.
  Graph g;
  int x = g.add_input("x", Shape{1, 8, 32, 32});
  const int c = g.add_conv(x, "c", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  const int r = g.add_relu(c, "r");
  const int a = g.add_add(r, x, "a");
  Subgraph sg{{c, r, a}, {x}, true};
  const HaloPlan plan(g, sg, Dims{1, 8, 8});
  const auto windows = plan.windows_for_brick(Dims{0, 1, 1});
  // Union of identity [8,16) and halo [7,17) is [7,17).
  EXPECT_EQ(windows.at(x).lo, (Dims{0, 7, 7}));
  EXPECT_EQ(windows.at(x).extent, (Dims{1, 10, 10}));
}

TEST(HaloPlan, StridedConvScalesWindows) {
  Graph g;
  int x = g.add_input("x", Shape{1, 8, 64, 64});
  const int c = g.add_conv(x, "c", Dims{3, 3}, 8, Dims{2, 2}, Dims{1, 1});
  Subgraph sg{{c}, {x}, true};
  const HaloPlan plan(g, sg, Dims{1, 8, 8});
  const auto windows = plan.windows_for_brick(Dims{0, 1, 0});
  // Output rows [8,16) need input rows [15, 15+17).
  EXPECT_EQ(windows.at(x).lo, (Dims{0, 15, -1}));
  EXPECT_EQ(windows.at(x).extent, (Dims{1, 17, 17}));
}

TEST(HaloPlan, MaxExtentsCoverAllNodes) {
  TwoConv t = two_conv_chain();
  const HaloPlan plan(t.g, t.sg, Dims{1, 8, 8});
  EXPECT_EQ(plan.max_extents().size(), 3u);  // c1, c2, input
  EXPECT_GT(plan.max_scratch_floats(), 0);
}

}  // namespace
}  // namespace brickdl
