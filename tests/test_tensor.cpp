#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace brickdl {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{1, 2, 3, 3});
  for (i64 i = 0; i < t.elements(); ++i) EXPECT_EQ(t.flat(i), 0.0f);
}

TEST(Tensor, IndexedAccess) {
  Tensor t(Shape{1, 2, 2, 2});
  t.at(Dims{0, 1, 1, 0}) = 42.0f;
  EXPECT_EQ(t.flat(t.dims().linear(Dims{0, 1, 1, 0})), 42.0f);
}

TEST(Tensor, FillAndCompare) {
  Tensor a(Shape{1, 3, 4, 4});
  Tensor b(Shape{1, 3, 4, 4});
  a.fill(1.5f);
  b.fill(1.5f);
  EXPECT_TRUE(allclose(a, b));
  b.flat(7) = 1.6f;
  EXPECT_NEAR(max_abs_diff(a, b), 0.1, 1e-6);
  EXPECT_FALSE(allclose(a, b, 1e-4));
  EXPECT_TRUE(allclose(a, b, 0.2));
}

TEST(Tensor, CompareRequiresSameShape) {
  Tensor a(Shape{1, 1, 2, 2});
  Tensor b(Shape{1, 1, 4, 4});
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(Tensor, RandomFillDeterministic) {
  Tensor a(Shape{1, 2, 5, 5});
  Tensor b(Shape{1, 2, 5, 5});
  Rng rng1(123), rng2(123);
  a.fill_random(rng1);
  b.fill_random(rng2);
  EXPECT_TRUE(allclose(a, b, 0.0));
  Rng rng3(124);
  b.fill_random(rng3);
  EXPECT_FALSE(allclose(a, b, 1e-6));
}

TEST(Tensor, RandomFillRange) {
  Tensor t(Shape{1, 1, 16, 16});
  Rng rng(7);
  t.fill_random(rng, -0.5f, 0.5f);
  for (i64 i = 0; i < t.elements(); ++i) {
    EXPECT_GE(t.flat(i), -0.5f);
    EXPECT_LT(t.flat(i), 0.5f);
  }
}

TEST(Tensor, RejectsNonPositiveExtent) {
  EXPECT_THROW(Tensor(Dims{0, 3}), Error);
  EXPECT_THROW(Tensor(Dims{2, -1}), Error);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

}  // namespace
}  // namespace brickdl
