#include <gtest/gtest.h>

#include "core/wavefront_executor.hpp"
#include "models/models.hpp"
#include "ops/dispatch.hpp"

namespace brickdl {
namespace {

Subgraph whole(const Graph& g) {
  Subgraph sg;
  for (const Node& node : g.nodes()) {
    if (node.kind == OpKind::kInput) {
      sg.external_inputs.push_back(node.id);
    } else {
      sg.nodes.push_back(node.id);
    }
  }
  sg.merged = true;
  return sg;
}

struct WaveRun {
  Tensor output{Shape{1, 1, 1, 1}};
  WavefrontExecutor::Stats stats;
};

WaveRun run_wavefront(const Graph& g, const Subgraph& sg, const Dims& brick,
                      const std::vector<Tensor>& reference, WeightStore& ws) {
  NumericBackend backend(g, ws, 4);
  std::unordered_map<int, TensorId> io;
  for (int ext : sg.external_inputs) {
    io[ext] = backend.register_tensor(g.node(ext).out_shape,
                                      Layout::kCanonical, {}, "ext");
    backend.bind(io[ext], reference[static_cast<size_t>(ext)]);
  }
  io[sg.terminal()] = backend.register_tensor(
      g.node(sg.terminal()).out_shape, Layout::kBricked, brick, "out");
  WavefrontExecutor exec(g, sg, brick, backend, io);
  exec.run();
  WaveRun r;
  r.output = backend.read(io[sg.terminal()]);
  r.stats = exec.stats();
  return r;
}

void check_wavefront(const Graph& g, const Dims& brick) {
  const Subgraph sg = whole(g);
  WeightStore ws(5);
  Tensor input(g.node(sg.external_inputs[0]).out_shape);
  Rng rng(77);
  input.fill_random(rng);
  const auto reference = run_graph_reference(g, input, ws);
  const WaveRun r = run_wavefront(g, sg, brick, reference, ws);
  EXPECT_TRUE(allclose(r.output,
                       reference[static_cast<size_t>(sg.terminal())], 1e-4));
  EXPECT_GT(r.stats.bricks_computed, 0);
  EXPECT_GT(r.stats.waves, 0);
}

TEST(WavefrontExecutor, ConvChainMatchesReference) {
  check_wavefront(build_conv_chain_2d(3, 1, 18, 3), Dims{1, 4, 4});
}

TEST(WavefrontExecutor, Chain3DMatchesReference) {
  check_wavefront(build_conv_chain_3d(2, 1, 10, 2), Dims{1, 4, 4, 4});
}

TEST(WavefrontExecutor, StridedChainMatchesReference) {
  Graph g;
  int x = g.add_input("x", Shape{1, 2, 21, 21});
  x = g.add_conv(x, "s2", Dims{3, 3}, 3, Dims{2, 2}, Dims{1, 1});
  g.add_conv(x, "c", Dims{3, 3}, 3, Dims{1, 1}, Dims{1, 1});
  check_wavefront(g, Dims{1, 4, 4});
}

TEST(WavefrontExecutor, ResidualBlockMatchesReference) {
  Graph g;
  int x = g.add_input("x", Shape{1, 4, 12, 12});
  const int c1 = g.add_conv(x, "c1", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  const int c2 = g.add_conv(c1, "c2", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  const int a = g.add_add(c2, x, "add");
  g.add_relu(a, "r");
  check_wavefront(g, Dims{1, 4, 4});
}

TEST(WavefrontExecutor, TransposedConvMatchesReference) {
  Graph g;
  int x = g.add_input("x", Shape{1, 3, 8, 8});
  x = g.add_deconv(x, "up", Dims{4, 4}, 2, Dims{2, 2}, Dims{1, 1});
  g.add_relu(x, "r");
  check_wavefront(g, Dims{1, 4, 4});
}

TEST(WavefrontExecutor, SkewOrdersAllDependencies) {
  // The chosen skew must place every dependence in a strictly earlier wave;
  // for a 3x3 unit-stride conv chain with 4-row bricks the halo reaches one
  // brick row, so skew must be at least 2.
  Graph g = build_conv_chain_2d(3, 1, 20, 2);
  const Subgraph sg = whole(g);
  WeightStore ws(1);
  NumericBackend backend(g, ws, 2);
  std::unordered_map<int, TensorId> io;
  io[0] = backend.register_tensor(g.node(0).out_shape, Layout::kCanonical, {},
                                  "in");
  io[sg.terminal()] = backend.register_tensor(
      g.node(sg.terminal()).out_shape, Layout::kBricked, Dims{1, 4, 4}, "out");
  WavefrontExecutor exec(g, sg, Dims{1, 4, 4}, backend, io);
  EXPECT_GE(exec.skew(), 2);
}

TEST(WavefrontExecutor, WaveCountAndWidth) {
  Graph g = build_conv_chain_2d(2, 1, 34, 2);  // 34 -> 32 -> 30 rows
  const Subgraph sg = whole(g);
  WeightStore ws(5);
  Tensor input(g.node(0).out_shape);
  Rng rng(3);
  input.fill_random(rng);
  const auto reference = run_graph_reference(g, input, ws);
  const WaveRun r = run_wavefront(g, sg, Dims{1, 4, 4}, reference, ws);
  // Waves cover all bricks; width bounded by bricks per row band.
  i64 total = 0;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kInput) continue;
    const Dims blocked = n.out_shape.blocked_dims();
    total += ceil_div(blocked[1], 4) * ceil_div(blocked[2], 4);
  }
  EXPECT_EQ(r.stats.bricks_computed, total);
  EXPECT_GT(r.stats.max_wave_width, 1);
  // More waves than layer count (diagonal pipeline), fewer than bricks.
  EXPECT_GT(r.stats.waves, 2);
  EXPECT_LT(r.stats.waves, total);
}

TEST(WavefrontExecutor, ModelBackendCountsSyncs) {
  Graph g = build_conv_chain_2d(2, 1, 18, 3);
  const Subgraph sg = whole(g);
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(g, sim);
  std::unordered_map<int, TensorId> io;
  io[0] = backend.register_tensor(g.node(0).out_shape, Layout::kCanonical, {},
                                  "in");
  io[sg.terminal()] = backend.register_tensor(
      g.node(sg.terminal()).out_shape, Layout::kBricked, Dims{1, 4, 4}, "out");
  WavefrontExecutor exec(g, sg, Dims{1, 4, 4}, backend, io);
  exec.run();
  EXPECT_EQ(backend.tally().syncs, exec.stats().waves);
  EXPECT_EQ(backend.tally().invocations, exec.stats().bricks_computed);
  // No atomics in wavefront execution — the barrier replaces them.
  EXPECT_EQ(sim.counters().atomics(), 0);
}

}  // namespace
}  // namespace brickdl
