#include <gtest/gtest.h>

#include "core/backend.hpp"

namespace brickdl {
namespace {

struct Fixture {
  Graph g;
  int input = -1;
  int conv = -1;
  WeightStore ws{11};

  Fixture() {
    input = g.add_input("x", Shape{1, 3, 16, 16});
    conv = g.add_conv(input, "c", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  }
};

TEST(NumericBackend, BindAndReadCanonical) {
  Fixture f;
  NumericBackend backend(f.g, f.ws, 2);
  const TensorId id = backend.register_tensor(Shape{1, 3, 16, 16},
                                              Layout::kCanonical, {}, "t");
  Tensor data(Shape{1, 3, 16, 16});
  Rng rng(1);
  data.fill_random(rng);
  backend.bind(id, data);
  EXPECT_TRUE(allclose(backend.read(id), data, 0.0));
}

TEST(NumericBackend, BindAndReadBricked) {
  Fixture f;
  NumericBackend backend(f.g, f.ws, 1);
  const TensorId id = backend.register_tensor(
      Shape{1, 3, 16, 16}, Layout::kBricked, Dims{1, 4, 4}, "t");
  Tensor data(Shape{1, 3, 16, 16});
  Rng rng(2);
  data.fill_random(rng);
  backend.bind(id, data);
  EXPECT_TRUE(allclose(backend.read(id), data, 0.0));
}

TEST(NumericBackend, LoadComputeStoreMatchesReference) {
  Fixture f;
  NumericBackend backend(f.g, f.ws, 1);
  const TensorId in_id = backend.register_tensor(Shape{1, 3, 16, 16},
                                                 Layout::kCanonical, {}, "in");
  const TensorId out_id = backend.register_tensor(Shape{1, 4, 16, 16},
                                                  Layout::kCanonical, {}, "out");
  Tensor input(Shape{1, 3, 16, 16});
  Rng rng(3);
  input.fill_random(rng);
  backend.bind(in_id, input);

  // Whole-output region through the backend slot machinery.
  const Dims out_lo{0, 0, 0};
  const Dims out_extent{1, 16, 16};
  Dims need_lo, need_extent;
  input_window_blocked(f.g.node(f.conv), out_lo, out_extent, &need_lo,
                       &need_extent);
  backend.invocation_begin(0);
  const SlotId in_slot = backend.load_window(0, in_id, need_lo, need_extent);
  const SlotId out_slot =
      backend.compute(0, f.conv, {in_slot}, out_lo, out_extent, false);
  backend.free_slot(0, in_slot);
  backend.store_window(0, out_slot, out_id, out_lo, out_extent);

  const auto expected =
      run_graph_reference(f.g, input, f.ws)[static_cast<size_t>(f.conv)];
  EXPECT_TRUE(allclose(backend.read(out_id), expected, 1e-5));
}

TEST(NumericBackend, CoverageCheckRejectsSmallWindow) {
  Fixture f;
  NumericBackend backend(f.g, f.ws, 1);
  const TensorId in_id = backend.register_tensor(Shape{1, 3, 16, 16},
                                                 Layout::kCanonical, {}, "in");
  // Load a window that does NOT cover the conv halo.
  const SlotId slot = backend.load_window(0, in_id, Dims{0, 0, 0},
                                          Dims{1, 8, 8});
  EXPECT_THROW(
      backend.compute(0, f.conv, {slot}, Dims{0, 0, 0}, Dims{1, 8, 8}, false),
      Error);
}

TEST(NumericBackend, FreedSlotRejected) {
  Fixture f;
  NumericBackend backend(f.g, f.ws, 1);
  const TensorId in_id = backend.register_tensor(Shape{1, 3, 16, 16},
                                                 Layout::kCanonical, {}, "in");
  const SlotId slot = backend.load_window(0, in_id, Dims{0, -1, -1},
                                          Dims{1, 18, 18});
  backend.free_slot(0, slot);
  EXPECT_THROW(backend.free_slot(0, slot), Error);
  EXPECT_THROW(backend.compute(0, f.conv, {slot}, Dims{0, 0, 0},
                               Dims{1, 16, 16}, false),
               Error);
}

TEST(NumericBackend, MaskToBoundsZeroesHalo) {
  Fixture f;
  NumericBackend backend(f.g, f.ws, 1);
  const TensorId in_id = backend.register_tensor(Shape{1, 3, 16, 16},
                                                 Layout::kCanonical, {}, "in");
  Tensor input(Shape{1, 3, 16, 16});
  input.fill(1.0f);
  backend.bind(in_id, input);
  const TensorId out_id = backend.register_tensor(Shape{1, 4, 16, 16},
                                                  Layout::kCanonical, {}, "out");
  // Compute a window that extends past the layer: [-2, 6) x [-2, 6).
  const Dims out_lo{0, -2, -2};
  const Dims out_extent{1, 8, 8};
  Dims need_lo, need_extent;
  input_window_blocked(f.g.node(f.conv), out_lo, out_extent, &need_lo,
                       &need_extent);
  const SlotId in_slot = backend.load_window(0, in_id, need_lo, need_extent);
  const SlotId masked =
      backend.compute(0, f.conv, {in_slot}, out_lo, out_extent, true);
  // Store through a window write and check the out-of-bounds part vanished
  // while in-bounds values survived.
  backend.store_window(0, masked, out_id, out_lo, out_extent);
  const Tensor out = backend.read(out_id);
  EXPECT_NE(out.at(Dims{0, 0, 2, 2}), 0.0f);
  backend.free_slot(0, in_slot);
}

TEST(ModelBackend, LoadStoreEmitTraffic) {
  Fixture f;
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(f.g, sim);
  const TensorId id = backend.register_tensor(Shape{1, 3, 16, 16},
                                              Layout::kCanonical, {}, "t");
  backend.invocation_begin(0);
  const SlotId slot = backend.load_window(0, id, Dims{0, 0, 0}, Dims{1, 16, 16});
  const TxnCounters after_load = sim.counters();
  // 3 channels x 16 rows x 16 floats = 3 KiB = 96 lines minimum.
  EXPECT_GE(after_load.l1, 96);
  backend.store_window(0, slot, id, Dims{0, 0, 0}, Dims{1, 16, 16});
  EXPECT_GT(sim.counters().l1, after_load.l1);
}

TEST(ModelBackend, ComputeTalliesFlopsAndWeights) {
  Fixture f;
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(f.g, sim);
  const TensorId id = backend.register_tensor(Shape{1, 3, 16, 16},
                                              Layout::kCanonical, {}, "t");
  const SlotId slot =
      backend.load_window(0, id, Dims{0, -1, -1}, Dims{1, 18, 18});
  const TxnCounters before = sim.counters();
  const SlotId out =
      backend.compute(0, f.conv, {slot}, Dims{0, 0, 0}, Dims{1, 16, 16}, false);
  (void)out;
  EXPECT_EQ(backend.tally().invocations, 1);
  // Full conv flops: 16*16*4 out elems * 3ch * 9 taps * 2 — a 2D conv, so
  // the flops land in the tensor-core bucket.
  EXPECT_NEAR(backend.tally().tc_flops, 16 * 16 * 4 * 3 * 9 * 2.0, 1.0);
  EXPECT_NEAR(backend.tally().flops, 0.0, 1e-9);
  // Weight stream: 4*3*9 floats = 108 floats -> at least 13 lines of traffic.
  EXPECT_GE((sim.counters() - before).l1, 13);
}

TEST(ModelBackend, BrickedEmissionTouchesWholeBricks) {
  Fixture f;
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(f.g, sim);
  const TensorId id = backend.register_tensor(
      Shape{1, 4, 16, 16}, Layout::kBricked, Dims{1, 8, 8}, "b");
  // Full-brick window: exactly 4 channels x 64 elements = 32 lines.
  backend.invocation_begin(0);
  const SlotId s = backend.load_window(0, id, Dims{0, 0, 0}, Dims{1, 8, 8});
  backend.free_slot(0, s);
  EXPECT_EQ(sim.counters().l1, 32);

  // A one-column halo slice from the neighboring brick: 8 rows per channel,
  // each row its own 32-byte line -> 8 lines x 4 channels.
  sim.reset_counters();
  backend.invocation_begin(1);
  const SlotId h = backend.load_window(0, id, Dims{0, 0, 8}, Dims{1, 8, 1});
  backend.free_slot(0, h);
  EXPECT_EQ(sim.counters().l1, 32);  // 4 ch x 8 rows x 1 line each
}

TEST(ModelBackend, DiscardPreventsWriteback) {
  Fixture f;
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(f.g, sim);
  const TensorId id = backend.register_tensor(Shape{1, 3, 16, 16},
                                              Layout::kCanonical, {}, "t");
  const SlotId s = backend.load_window(0, id, Dims{0, 0, 0}, Dims{1, 16, 16});
  backend.store_window(0, s, id, Dims{0, 0, 0}, Dims{1, 16, 16});
  backend.discard_tensor(id);
  sim.flush();
  EXPECT_EQ(sim.counters().dram_write, 0);
}

TEST(ModelBackend, OutOfBoundsWindowEmitsNothing) {
  Fixture f;
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(f.g, sim);
  const TensorId id = backend.register_tensor(Shape{1, 3, 16, 16},
                                              Layout::kCanonical, {}, "t");
  const SlotId s =
      backend.load_window(0, id, Dims{0, -8, -8}, Dims{1, 4, 4});
  backend.free_slot(0, s);
  EXPECT_EQ(sim.counters().l1, 0);
}

}  // namespace
}  // namespace brickdl
