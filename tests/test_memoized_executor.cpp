#include <gtest/gtest.h>

#include "core/memoized_executor.hpp"
#include "ops/dispatch.hpp"
#include "models/models.hpp"

namespace brickdl {
namespace {

Subgraph all_non_input_nodes(const Graph& g) {
  Subgraph sg;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kInput) {
      sg.external_inputs.push_back(n.id);
    } else {
      sg.nodes.push_back(n.id);
    }
  }
  sg.merged = true;
  return sg;
}

struct MemoRun {
  Tensor output{Shape{1, 1, 1, 1}};
  MemoizedExecutor::Stats stats;
};

MemoRun run_memoized(const Graph& g, const Subgraph& sg,
                     const Dims& brick_extent, int workers, bool parallel,
                     const std::vector<Tensor>& reference) {
  WeightStore ws(5);
  NumericBackend backend(g, ws, std::max(workers, 1));
  std::unordered_map<int, TensorId> io;
  for (int ext : sg.external_inputs) {
    const TensorId id = backend.register_tensor(
        g.node(ext).out_shape, Layout::kCanonical, {}, "ext");
    backend.bind(id, reference[static_cast<size_t>(ext)]);
    io[ext] = id;
  }
  const TensorId out = backend.register_tensor(
      g.node(sg.terminal()).out_shape, Layout::kBricked, brick_extent, "out");
  io[sg.terminal()] = out;

  MemoizedExecutor exec(g, sg, brick_extent, backend, io, workers);
  if (parallel) {
    ThreadPool pool(workers);
    exec.run_parallel(pool);
  } else {
    exec.run();
  }
  MemoRun r;
  r.output = backend.read(out);
  r.stats = exec.stats();
  return r;
}

void check_memoized_matches_reference(const Graph& g, const Subgraph& sg,
                                      const Dims& brick_extent,
                                      int workers = 4) {
  WeightStore ws(5);
  const Node& input_node = g.node(sg.external_inputs[0]);
  Tensor input(input_node.out_shape);
  Rng rng(77);
  input.fill_random(rng);
  const auto reference = run_graph_reference(g, input, ws);

  const MemoRun r =
      run_memoized(g, sg, brick_extent, workers, false, reference);
  EXPECT_TRUE(allclose(r.output,
                       reference[static_cast<size_t>(sg.terminal())], 1e-4));
  // Two compulsory atomics per computed brick (§3.2.2).
  EXPECT_EQ(r.stats.compulsory_atomics, 2 * r.stats.bricks_computed);
  EXPECT_GT(r.stats.bricks_computed, 0);
}

TEST(MemoizedExecutor, TwoConvChain) {
  Graph g = build_conv_chain_2d(2, 1, 18, 3);
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

TEST(MemoizedExecutor, DeepConvChain) {
  Graph g = build_conv_chain_2d(4, 1, 20, 2);
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

TEST(MemoizedExecutor, ConvChain3D) {
  Graph g = build_conv_chain_3d(2, 1, 10, 2);
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4, 4});
}

TEST(MemoizedExecutor, ResidualBlock) {
  Graph g;
  int x = g.add_input("x", Shape{1, 4, 12, 12});
  const int c1 = g.add_conv(x, "c1", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  const int r1 = g.add_relu(c1, "r1");
  const int c2 = g.add_conv(r1, "c2", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  const int a = g.add_add(c2, x, "add");
  g.add_relu(a, "out");
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

TEST(MemoizedExecutor, StridedChainLeavesDeadBricksUncomputed) {
  // 21 -> stride 2 -> 11 -> 9: some input-side bricks may be dead; the
  // executor must complete all terminal bricks regardless.
  Graph g;
  int x = g.add_input("x", Shape{1, 2, 21, 21});
  x = g.add_conv(x, "s2", Dims{3, 3}, 3, Dims{2, 2}, Dims{0, 0});
  x = g.add_conv(x, "c", Dims{3, 3}, 3, Dims{1, 1}, Dims{0, 0});
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

TEST(MemoizedExecutor, ExactlyOncePerReachableBrickAcrossWorkerCounts) {
  // Stats invariant: every brick some terminal brick transitively needs is
  // computed exactly once per run — no duplicate work under contention, no
  // dead brick touched — for both the virtual scheduler and real threads.
  // The strided chain drops input columns, so dead bricks exist and the
  // invariant must count reachable bricks, not total bricks.
  // Dead interior bricks need a strided layer *after* a memoized layer with
  // stride larger than the brick extent: a stride-4 1×1 conv over 2×2 bricks
  // reads columns {0,4,8,...}, leaving every {4k+2, 4k+3} brick column of
  // the first layer's memo buffer unread.
  Graph plain = build_conv_chain_2d(3, 1, 18, 3);
  Graph strided;
  {
    int x = strided.add_input("x", Shape{1, 2, 17, 17});
    x = strided.add_conv(x, "c1", Dims{3, 3}, 3, Dims{1, 1}, Dims{1, 1});
    strided.add_conv(x, "s4", Dims{1, 1}, 3, Dims{4, 4}, Dims{0, 0});
  }
  for (const Graph* gp : {&plain, &strided}) {
    const Graph& g = *gp;
    const Subgraph sg = all_non_input_nodes(g);
    const Dims brick_extent = gp == &strided ? Dims{1, 2, 2} : Dims{1, 4, 4};
    WeightStore ws(5);
    Tensor input(g.node(sg.external_inputs[0]).out_shape);
    Rng rng(77);
    input.fill_random(rng);
    const auto reference = run_graph_reference(g, input, ws);

    for (int workers : {1, 2, 4, 16}) {
      for (bool parallel : {false, true}) {
        SCOPED_TRACE((gp == &plain ? "plain" : "strided") +
                     std::string(parallel ? " parallel" : " virtual") +
                     " workers=" + std::to_string(workers));
        NumericBackend backend(g, ws, workers);
        std::unordered_map<int, TensorId> io;
        for (int ext : sg.external_inputs) {
          const TensorId id = backend.register_tensor(
              g.node(ext).out_shape, Layout::kCanonical, {}, "ext");
          backend.bind(id, reference[static_cast<size_t>(ext)]);
          io[ext] = id;
        }
        const TensorId out =
            backend.register_tensor(g.node(sg.terminal()).out_shape,
                                    Layout::kBricked, brick_extent, "out");
        io[sg.terminal()] = out;

        MemoizedExecutor exec(g, sg, brick_extent, backend, io, workers);
        if (parallel) {
          ThreadPool pool(workers);
          exec.run_parallel(pool);
        } else {
          exec.run();
        }
        EXPECT_EQ(exec.stats().bricks_computed, exec.reachable_bricks());
        if (gp == &strided) {
          EXPECT_LT(exec.reachable_bricks(), exec.total_bricks());
        }
        EXPECT_TRUE(allclose(backend.read(out),
                             reference[static_cast<size_t>(sg.terminal())],
                             1e-4));
      }
    }
  }
}

TEST(MemoizedExecutor, InceptionStyleFork) {
  Graph g;
  int x = g.add_input("x", Shape{1, 4, 12, 12});
  const int b1 = g.add_conv(x, "b1", Dims{1, 1}, 3, Dims{1, 1}, Dims{0, 0});
  const int b2 = g.add_conv(x, "b2", Dims{3, 3}, 3, Dims{1, 1}, Dims{1, 1});
  const int b3 = g.add_pool(x, "b3", PoolKind::kAvg, Dims{3, 3}, Dims{1, 1},
                            Dims{1, 1});
  g.add_concat({b1, b2, b3}, "cat");
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

TEST(MemoizedExecutor, TransposedConvChain) {
  Graph g;
  int x = g.add_input("x", Shape{1, 3, 8, 8});
  x = g.add_deconv(x, "up", Dims{4, 4}, 2, Dims{2, 2}, Dims{1, 1});
  x = g.add_conv(x, "c", Dims{3, 3}, 2, Dims{1, 1}, Dims{1, 1});
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

TEST(MemoizedExecutor, PoolTerminated) {
  Graph g;
  int x = g.add_input("x", Shape{1, 3, 16, 16});
  x = g.add_conv(x, "c1", Dims{3, 3}, 4, Dims{1, 1}, Dims{1, 1});
  x = g.add_relu(x, "r1");
  x = g.add_pool(x, "p", PoolKind::kMax, Dims{2, 2}, Dims{2, 2});
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

TEST(MemoizedExecutor, VirtualSchedulerDeterministic) {
  Graph g = build_conv_chain_2d(3, 1, 18, 2);
  const Subgraph sg = all_non_input_nodes(g);
  WeightStore ws(5);
  Tensor input(g.node(sg.external_inputs[0]).out_shape);
  Rng rng(9);
  input.fill_random(rng);
  const auto reference = run_graph_reference(g, input, ws);

  const MemoRun a = run_memoized(g, sg, Dims{1, 4, 4}, 4, false, reference);
  const MemoRun b = run_memoized(g, sg, Dims{1, 4, 4}, 4, false, reference);
  EXPECT_EQ(a.stats.conflict_atomics, b.stats.conflict_atomics);
  EXPECT_EQ(a.stats.defers, b.stats.defers);
  EXPECT_EQ(a.stats.bricks_computed, b.stats.bricks_computed);
  EXPECT_TRUE(allclose(a.output, b.output, 0.0));
}

TEST(MemoizedExecutor, ConflictsAriseWithMultipleWorkers) {
  // With several virtual workers racing on shared halo dependencies, some
  // conflicting atomics must occur; with one worker, none can.
  Graph g = build_conv_chain_2d(3, 1, 26, 2);
  const Subgraph sg = all_non_input_nodes(g);
  WeightStore ws(5);
  Tensor input(g.node(sg.external_inputs[0]).out_shape);
  Rng rng(10);
  input.fill_random(rng);
  const auto reference = run_graph_reference(g, input, ws);

  const MemoRun solo = run_memoized(g, sg, Dims{1, 4, 4}, 1, false, reference);
  EXPECT_EQ(solo.stats.conflict_atomics, 0);
  const MemoRun many = run_memoized(g, sg, Dims{1, 4, 4}, 8, false, reference);
  EXPECT_GT(many.stats.conflict_atomics, 0);
  EXPECT_TRUE(allclose(solo.output, many.output, 0.0));
}

TEST(MemoizedExecutor, ParallelThreadsMatchReference) {
  Graph g = build_conv_chain_2d(3, 1, 20, 3);
  const Subgraph sg = all_non_input_nodes(g);
  WeightStore ws(5);
  Tensor input(g.node(sg.external_inputs[0]).out_shape);
  Rng rng(11);
  input.fill_random(rng);
  const auto reference = run_graph_reference(g, input, ws);

  // Stress the CAS protocol with real threads, several times.
  for (int round = 0; round < 5; ++round) {
    const MemoRun r = run_memoized(g, sg, Dims{1, 4, 4}, 8, true, reference);
    ASSERT_TRUE(allclose(
        r.output, reference[static_cast<size_t>(sg.terminal())], 1e-4));
    EXPECT_EQ(r.stats.compulsory_atomics, 2 * r.stats.bricks_computed);
  }
}

TEST(MemoizedExecutor, ModelBackendCountsAtomics) {
  Graph g = build_conv_chain_2d(2, 1, 18, 3);
  const Subgraph sg = all_non_input_nodes(g);
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(g, sim);
  std::unordered_map<int, TensorId> io;
  io[sg.external_inputs[0]] = backend.register_tensor(
      g.node(sg.external_inputs[0]).out_shape, Layout::kCanonical, {}, "in");
  io[sg.terminal()] = backend.register_tensor(
      g.node(sg.terminal()).out_shape, Layout::kBricked, Dims{1, 4, 4}, "out");
  MemoizedExecutor exec(g, sg, Dims{1, 4, 4}, backend, io, 8);
  exec.run();
  const TxnCounters txns = sim.counters();
  EXPECT_EQ(txns.atomics_compulsory, exec.stats().compulsory_atomics);
  EXPECT_EQ(txns.atomics_conflict, exec.stats().conflict_atomics);
  EXPECT_EQ(backend.tally().invocations, exec.stats().bricks_computed);
  EXPECT_GT(txns.dram_read, 0);
}

TEST(MemoizedExecutor, BatchBricksIndependent) {
  Graph g = build_conv_chain_2d(2, 2, 14, 2);
  check_memoized_matches_reference(g, all_non_input_nodes(g), Dims{1, 4, 4});
}

}  // namespace
}  // namespace brickdl
