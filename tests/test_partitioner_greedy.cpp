// Property suite for the benefit-driven greedy partitioner (CTest label
// `partition`, DESIGN.md §11).
//
// Over a seeded corpus of 200 random graphs the greedy partitioner must
// uphold, on every merge result:
//  * subgraph validity (topological node order, single terminal, external
//    inputs declared) and acyclicity of the quotient DAG — checked as a
//    valid topological subgraph order (every external input is produced by a
//    graph input or an earlier subgraph's terminal);
//  * exactly-once coverage: every non-input node in exactly one subgraph;
//  * the L2 footprint budget as a hard cap on every merged subgraph;
//  * the A/B objective: greedy's model-predicted total latency never worse
//    than the paper partitioner's on the same graph and options.
// Plus the cycle-safety BFS regression (diamond with a long side chain) and
// the named-Status rejection of unknown partition-strategy names.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "core/partitioner.hpp"
#include "models/models.hpp"
#include "obs/metrics.hpp"
#include "testing/differential.hpp"
#include "testing/graph_gen.hpp"

namespace brickdl {
namespace {

constexpr u64 kSweepSeed = 2;  ///< decorrelated from the differential sweep

/// Subgraph invariants + exactly-once coverage + quotient-DAG topological
/// order. The order check is what rules out cycles: a cyclic quotient DAG
/// has no ordering in which every external input is already produced.
void check_greedy_invariants(const Graph& g, const Partition& p,
                             i64 l2_budget) {
  std::vector<int> covered(static_cast<size_t>(g.num_nodes()), 0);
  std::vector<bool> produced(static_cast<size_t>(g.num_nodes()), false);
  for (const Node& node : g.nodes()) {
    if (node.kind == OpKind::kInput) produced[static_cast<size_t>(node.id)] = true;
  }
  for (const auto& planned : p.subgraphs) {
    EXPECT_NO_THROW(validate_subgraph(g, planned.sg));
    for (int n : planned.sg.nodes) covered[static_cast<size_t>(n)]++;
    for (int ext : planned.sg.external_inputs) {
      EXPECT_TRUE(produced[static_cast<size_t>(ext)])
          << "subgraph terminating at '" << g.node(planned.sg.terminal()).name
          << "' consumes '" << g.node(ext).name
          << "' before any earlier subgraph produces it (quotient order "
             "broken or cyclic)";
    }
    produced[static_cast<size_t>(planned.sg.terminal())] = true;
    if (planned.strategy != Strategy::kVendor) {
      EXPECT_LE(planned.footprint_bytes, l2_budget)
          << "merged subgraph terminating at '"
          << g.node(planned.sg.terminal()).name
          << "' exceeds the footprint budget";
    }
  }
  for (const Node& node : g.nodes()) {
    const int expected = node.kind == OpKind::kInput ? 0 : 1;
    EXPECT_EQ(covered[static_cast<size_t>(node.id)], expected)
        << "node " << node.name << " covered "
        << covered[static_cast<size_t>(node.id)] << " times";
  }
}

void sweep_random_graphs(int lo, int hi) {
  PartitionOptions greedy_options;
  greedy_options.strategy = "greedy";
  PartitionOptions paper_options;  // defaults: strategy = "paper"
  for (int idx = lo; idx < hi; ++idx) {
    const u64 seed = graph_seed(kSweepSeed, idx);
    const Graph g = random_graph(seed);
    SCOPED_TRACE("graph " + std::to_string(idx) + " (seed " +
                 std::to_string(seed) + ")");
    const Partition greedy = partition_graph(g, greedy_options);
    check_greedy_invariants(g, greedy, greedy_options.l2_budget);

    const Partition paper = partition_graph(g, paper_options);
    const double greedy_s =
        predicted_partition_seconds(g, greedy, greedy_options.machine);
    const double paper_s =
        predicted_partition_seconds(g, paper, paper_options.machine);
    // The shared objective: greedy is never worse than paper (the A/B guard
    // in partition_greedy returns the paper partition when it scores better).
    EXPECT_LE(greedy_s, paper_s * (1.0 + 1e-9));
  }
}

TEST(GreedyPartitioner, RandomGraphs000To049) { sweep_random_graphs(0, 50); }
TEST(GreedyPartitioner, RandomGraphs050To099) { sweep_random_graphs(50, 100); }
TEST(GreedyPartitioner, RandomGraphs100To149) { sweep_random_graphs(100, 150); }
TEST(GreedyPartitioner, RandomGraphs150To199) { sweep_random_graphs(150, 200); }

TEST(GreedyPartitioner, TightBudgetIsHardCap) {
  // An absurdly small budget must keep every merged subgraph within it (in
  // practice forcing single-layer or vendor groups), never violate coverage.
  Graph g = build_conv_chain_2d(6, 1, 96, 64);
  PartitionOptions options;
  options.strategy = "greedy";
  options.l2_budget = 1;
  const Partition p = partition_graph(g, options);
  check_greedy_invariants(g, p, options.l2_budget);
}

TEST(GreedyPartitioner, ModelZooPartitionsCleanly) {
  ModelConfig config;
  config.batch = 1;
  config.spatial = 64;
  config.width_div = 8;
  PartitionOptions greedy_options;
  greedy_options.strategy = "greedy";
  for (const auto& [name, builder] : model_zoo()) {
    const Graph g = builder(config);
    SCOPED_TRACE(name);
    const Partition p = partition_graph(g, greedy_options);
    check_greedy_invariants(g, p, greedy_options.l2_budget);
    const Partition paper = partition_graph(g, {});
    EXPECT_LE(predicted_partition_seconds(g, p, greedy_options.machine),
              predicted_partition_seconds(g, paper, greedy_options.machine) *
                  (1.0 + 1e-9))
        << name;
  }
}

// ---------------------------------------------------------------------------
// Cycle-safety BFS regression: a diamond whose long side chain tempts a
// cycle-creating merge.
//
//          ┌→ b ──────────────┐
//   x → a ─┤                  ├→ d (add)
//          └→ c1 → c2 → c3 ───┘
//
// Once b and d share a group G, merging {a} with G is exactly the tempting
// move: the direct edge a→G exists and a's terminal is consumed inside G,
// but the long side chain c1→c2→c3 still runs outside — the merged group
// would both feed c1 and depend on c3, a cycle in the quotient DAG. The BFS
// must reject it.
Graph diamond_with_side_chain() {
  Graph g("diamond_side_chain");
  const int x = g.add_input("x", Shape{1, 8, 32, 32});
  const int a = g.add_conv(x, "a", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  const int b = g.add_conv(a, "b", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  const int c1 = g.add_conv(a, "c1", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  const int c2 = g.add_conv(c1, "c2", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  const int c3 = g.add_conv(c2, "c3", Dims{3, 3}, 8, Dims{1, 1}, Dims{1, 1});
  g.add_add(b, c3, "d");
  return g;
}

TEST(GreedyPartitioner, CycleSafetyBfsRejectsDiamondMerge) {
  const Graph g = diamond_with_side_chain();
  // Node ids: 0=x, 1=a, 2=b, 3=c1, 4=c2, 5=c3, 6=d. Group state after the
  // greedy loop merged b into d's group (group 1); the chain stays split.
  //                 x   a  b  c1 c2 c3  d
  std::vector<int> group_of = {-1, 0, 1, 2, 3, 4, 1};
  EXPECT_TRUE(merge_creates_cycle(g, group_of, /*ga=*/0, /*gb=*/1))
      << "merging a into {b, d} must be rejected: the side chain c1→c2→c3 "
         "would sit both downstream and upstream of the merged group";
  // With d still in its own group there is no escaping path — merging a and
  // b alone is cycle-free (it fails only the single-terminal closure).
  std::vector<int> split = {-1, 0, 1, 2, 3, 4, 5};
  EXPECT_FALSE(merge_creates_cycle(g, split, /*ga=*/0, /*gb=*/1));
  // Symmetric guard on the other diamond arm: a into {c1..c3, d} while b is
  // still outside escapes through b.
  std::vector<int> chain_merged = {-1, 0, 2, 1, 1, 1, 1};
  EXPECT_TRUE(merge_creates_cycle(g, chain_merged, /*ga=*/0, /*gb=*/1));

  // End to end, the greedy partitioner must still emit a valid acyclic
  // partition of the diamond, whatever merge order the benefits pick.
  PartitionOptions options;
  options.strategy = "greedy";
  const Partition p = partition_graph(g, options);
  check_greedy_invariants(g, p, options.l2_budget);
}

// ---------------------------------------------------------------------------
// Option validation: an unknown partition-strategy name is a named Status,
// never a silent fallback to the default partitioner.

TEST(GreedyPartitioner, UnknownStrategyNameRejected) {
  EXPECT_TRUE(known_partition_strategy("paper"));
  EXPECT_TRUE(known_partition_strategy("greedy"));
  EXPECT_FALSE(known_partition_strategy(""));
  EXPECT_FALSE(known_partition_strategy("Greedy"));
  EXPECT_FALSE(known_partition_strategy("footprint"));

  EngineOptions options;
  options.partition.strategy = "footprint";
  const Status status = validate_engine_options(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidOptions);
  EXPECT_NE(status.to_string().find("footprint"), std::string::npos)
      << "status must name the offending strategy: " << status.to_string();

  // The engine surfaces the same status instead of partitioning at all.
  Graph g = build_conv_chain_2d(3, 1, 64, 16);
  Engine engine(g, options);
  EXPECT_EQ(engine.validate().code(), StatusCode::kInvalidOptions);
  EXPECT_TRUE(engine.partition().subgraphs.empty());
}

TEST(GreedyPartitioner, MetricsPublished) {
  auto& m = obs::metrics();
  const i64 calls_before =
      m.counter("partition.greedy.cost_model_calls").value();
  const i64 accepted_before =
      m.counter("partition.greedy.merges_accepted").value();
  Graph g = build_conv_chain_2d(4, 1, 64, 16);
  PartitionOptions options;
  options.strategy = "greedy";
  const Partition p = partition_graph(g, options);
  check_greedy_invariants(g, p, options.l2_budget);
  EXPECT_GT(m.counter("partition.greedy.cost_model_calls").value(),
            calls_before);
  // A pure conv chain at this scale merges at least once.
  EXPECT_GT(m.counter("partition.greedy.merges_accepted").value(),
            accepted_before);
}

}  // namespace
}  // namespace brickdl
