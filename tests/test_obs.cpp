// Observability layer (DESIGN.md §8): tracer export/parse-back and span
// nesting, metrics exactness under concurrency, mid-run memoized stats
// snapshots, model-vs-measured golden comparisons, and run-report schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "models/models.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace brickdl {
namespace {

using obs::Json;

/// Every tracer/metrics test starts from a clean global state: drop all
/// recorded events and zero every instrument (both are process-wide).
void reset_obs() {
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
  obs::metrics().reset();
}

struct ModelRun {
  EngineResult result;
  MachineParams machine = MachineParams::a100();
};

ModelRun run_model(const Graph& graph, EngineOptions options) {
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(graph, sim);
  Engine engine(graph, std::move(options));
  ModelRun run;
  run.result = engine.run(backend);
  run.machine = sim.params();
  return run;
}

// ---------------------------------------------------------------- Json

TEST(ObsJson, RoundTripPreservesStructure) {
  Json doc = Json::object();
  doc.set("name", "brickdl");
  doc.set("count", i64{42});
  doc.set("ratio", 0.25);
  doc.set("ok", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(i64{1});
  arr.push_back("two");
  Json inner = Json::object();
  inner.set("deep", i64{-7});
  arr.push_back(std::move(inner));
  doc.set("items", std::move(arr));

  for (int indent : {-1, 1, 2}) {
    Result<Json> back = Json::parse(doc.dump(indent));
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_TRUE(back.value() == doc);
  }
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing", "nul", "\"\\q\"",
        "{\"a\" 1}", "[1 2]"}) {
    Result<Json> r = Json::parse(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidGraph);
    }
  }
}

// --------------------------------------------------------------- Tracer

TEST(ObsTrace, ExportIsWellFormedChromeTrace) {
  reset_obs();
  obs::Tracer::instance().set_enabled(true);
  obs::Tracer::set_thread_label("test-main");
  {
    obs::TraceSpan outer("engine", "outer", {{"k", 7}});
    obs::TraceSpan inner("layer", "inner");
  }
  obs::Tracer::instant("engine", "marker");
  obs::Tracer::instance().set_enabled(false);

  EXPECT_EQ(obs::Tracer::instance().event_count(), 3u);
  const std::string text = obs::Tracer::instance().export_chrome_json();
  Result<Json> doc = Json::parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_TRUE(obs::validate_chrome_trace(doc.value()).ok());

  // The calling thread's track is labeled via thread_name metadata.
  bool found_label = false;
  for (const Json& e : doc.value().find("traceEvents")->elements()) {
    const Json* ph = e.find("ph");
    if (ph && ph->str() == "M") {
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      if (args->find("name")->str() == "test-main") found_label = true;
    }
  }
  EXPECT_TRUE(found_label);
}

TEST(ObsTrace, RuntimeOffRecordsNothing) {
  reset_obs();
  ASSERT_FALSE(obs::Tracer::enabled());
  {
    obs::TraceSpan span("engine", "should-not-appear", {{"k", 1}});
    obs::TraceSpan gated("engine", "also-not", false);
  }
  obs::Tracer::instant("engine", "neither");
  // Gate=false spans record nothing even while the tracer is on.
  obs::Tracer::instance().set_enabled(true);
  { obs::TraceSpan gated("engine", "gated-off", false); }
  obs::Tracer::instance().set_enabled(false);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);

  // An engine run with tracing runtime-off must leave the rings empty too.
  EngineOptions options;
  (void)run_model(build_conv_chain_2d(2, 1, 18, 2), options);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST(ObsTrace, RingOverflowCountsDropped) {
  reset_obs();
  obs::Tracer::instance().clear();
  // New capacity applies to buffers registered afterwards; record from a
  // fresh thread so its ring is small.
  obs::Tracer::instance().set_ring_capacity(16);
  std::thread t([] {
    obs::Tracer::instance().set_enabled(true);
    for (int i = 0; i < 40; ++i) {
      obs::TraceSpan span("engine", "spin");
    }
    obs::Tracer::instance().set_enabled(false);
  });
  t.join();
  EXPECT_EQ(obs::Tracer::instance().dropped_events(), 24u);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 16u);
  obs::Tracer::instance().set_ring_capacity(size_t{1} << 16);
}

struct SpanRec {
  std::string name;
  std::string cat;
  double ts = 0.0;
  double dur = 0.0;
  i64 tid = 0;
  bool contains(const SpanRec& inner) const {
    // 1ns slack: the export rounds ns to µs doubles independently per event.
    constexpr double kSlackUs = 1e-3;
    return tid == inner.tid && ts <= inner.ts + kSlackUs &&
           inner.ts + inner.dur <= ts + dur + kSlackUs;
  }
};

std::vector<SpanRec> complete_spans(const Json& trace) {
  std::vector<SpanRec> spans;
  for (const Json& e : trace.find("traceEvents")->elements()) {
    if (e.find("ph")->str() != "X") continue;
    SpanRec s;
    s.name = e.find("name")->str();
    s.cat = e.find("cat")->str();
    s.ts = e.find("ts")->number();
    s.dur = e.find("dur")->number();
    s.tid = e.find("tid")->integer();
    spans.push_back(std::move(s));
  }
  return spans;
}

bool contained_in_any(const SpanRec& inner, const std::vector<SpanRec>& spans,
                      const std::string& cat,
                      const std::string& name_prefix = "") {
  for (const SpanRec& outer : spans) {
    if (outer.cat != cat) continue;
    if (!name_prefix.empty() &&
        outer.name.rfind(name_prefix, 0) != 0) {
      continue;
    }
    if (outer.contains(inner)) return true;
  }
  return false;
}

void check_span_hierarchy(Strategy strategy) {
  reset_obs();
  obs::Tracer::instance().set_enabled(true);
  EngineOptions options;
  options.force_strategy = strategy;
  (void)run_model(build_conv_chain_2d(3, 1, 20, 2), options);
  obs::Tracer::instance().set_enabled(false);

  const Json trace = obs::Tracer::instance().export_chrome_trace();
  ASSERT_TRUE(obs::validate_chrome_trace(trace).ok());
  const std::vector<SpanRec> spans = complete_spans(trace);

  int bricks = 0, layers = 0, subgraphs = 0;
  for (const SpanRec& s : spans) {
    if (s.cat == "brick") {
      // Every brick kernel span nests inside a layer span, which nests
      // inside a subgraph span, which nests inside the engine run span.
      EXPECT_TRUE(contained_in_any(s, spans, "layer")) << s.name;
      ++bricks;
    } else if (s.cat == "layer") {
      EXPECT_TRUE(contained_in_any(s, spans, "engine", "subgraph:"))
          << s.name;
      ++layers;
    } else if (s.cat == "engine" && s.name.rfind("subgraph:", 0) == 0) {
      EXPECT_TRUE(contained_in_any(s, spans, "engine", "run:")) << s.name;
      ++subgraphs;
    }
  }
  EXPECT_GT(bricks, 0);
  EXPECT_GT(layers, 0);
  EXPECT_GT(subgraphs, 0);
  EXPECT_GE(layers, bricks);  // a layer span wraps each brick kernel
}

TEST(ObsTrace, SpanNestingMatchesHierarchyPadded) {
  check_span_hierarchy(Strategy::kPadded);
}

TEST(ObsTrace, SpanNestingMatchesHierarchyMemoized) {
  check_span_hierarchy(Strategy::kMemoized);
}

// -------------------------------------------------------------- Metrics

TEST(ObsMetrics, ExactUnderConcurrentWriters) {
  reset_obs();
  constexpr int kThreads = 16;
  constexpr int kIters = 10000;
  obs::Counter& counter = obs::metrics().counter("test.concurrent");
  obs::Histogram& hist = obs::metrics().histogram("test.concurrent_hist");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.add(1);
        hist.observe(t + 1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter.value(), i64{kThreads} * kIters);
  EXPECT_EQ(hist.count(), i64{kThreads} * kIters);
  // Sum of (t+1) over threads, each observed kIters times.
  EXPECT_EQ(hist.sum(), i64{kIters} * kThreads * (kThreads + 1) / 2);
  EXPECT_EQ(hist.min(), 1);
  EXPECT_EQ(hist.max(), kThreads);
}

TEST(ObsMetrics, HistogramBucketsAndPercentiles) {
  reset_obs();
  obs::Histogram& hist = obs::metrics().histogram("test.hist");
  EXPECT_EQ(hist.min(), 0);  // empty
  EXPECT_EQ(hist.max(), 0);
  for (i64 v : {0, 1, 2, 3, 4, 7, 8, 1000}) hist.observe(v);
  EXPECT_EQ(hist.count(), 8);
  EXPECT_EQ(hist.sum(), 1025);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 1000);
  EXPECT_EQ(hist.bucket_count(0), 1);  // value 0
  EXPECT_EQ(hist.bucket_count(1), 1);  // value 1
  EXPECT_EQ(hist.bucket_count(2), 2);  // 2..3
  EXPECT_EQ(hist.bucket_count(3), 2);  // 4..7 (samples 4 and 7)
  EXPECT_EQ(hist.bucket_count(4), 1);  // 8..15
  EXPECT_GE(hist.percentile(0.99), 512);
  hist.reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 0);
  hist.observe(5);  // post-reset sentinel behavior
  EXPECT_EQ(hist.min(), 5);
  EXPECT_EQ(hist.max(), 5);
}

TEST(ObsMetrics, RegistryJsonSnapshot) {
  reset_obs();
  obs::metrics().counter("test.a").add(3);
  obs::metrics().gauge("test.g").set(1.5);
  obs::metrics().histogram("test.h").observe(4);
  const Json snap = obs::metrics().to_json();
  ASSERT_TRUE(snap.is_object());
  const Json* a = snap.find("test.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->integer(), 3);
  const Json* g = snap.find("test.g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->number(), 1.5);
  const Json* h = snap.find("test.h");
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->is_object());
  EXPECT_EQ(h->find("count")->integer(), 1);
  EXPECT_EQ(h->find("sum")->integer(), 4);
}

TEST(ObsMetrics, ExecutorCountersLandOnRegistry) {
  reset_obs();
  EngineOptions options;
  options.force_strategy = Strategy::kMemoized;
  const ModelRun run = run_model(build_conv_chain_2d(2, 1, 18, 2), options);

  i64 bricks = 0, atomics = 0;
  for (const SubgraphReport& r : run.result.reports) {
    bricks += r.memo.bricks_computed;
    atomics += r.memo.compulsory_atomics;
  }
  ASSERT_GT(bricks, 0);
  // The memoized executor publishes its Stats onto the shared registry
  // (satellite: ad-hoc counters migrated to metrics).
  EXPECT_EQ(obs::metrics().counter("memo.bricks_computed").value(), bricks);
  EXPECT_EQ(obs::metrics().counter("memo.compulsory_atomics").value(),
            atomics);
  EXPECT_EQ(obs::metrics().counter("memo.reclaims").value(), 0);
  EXPECT_GT(obs::metrics().counter("engine.subgraphs").value(), 0);
  EXPECT_GT(obs::metrics().counter("partition.runs").value(), 0);
}

// --------------------------------------------- Memoized stats snapshots

Subgraph all_non_input_nodes(const Graph& g) {
  Subgraph sg;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kInput) {
      sg.external_inputs.push_back(n.id);
    } else {
      sg.nodes.push_back(n.id);
    }
  }
  sg.merged = true;
  return sg;
}

TEST(ObsMemoStats, MidRunSnapshotIsMonotonicAndConverges) {
  const Graph g = build_conv_chain_2d(3, 1, 24, 2);
  const Subgraph sg = all_non_input_nodes(g);
  const Dims brick_extent{1, 4, 4};
  const int workers = 8;

  WeightStore ws(5);
  NumericBackend backend(g, ws, workers);
  std::unordered_map<int, TensorId> io;
  Rng rng(77);
  for (int ext : sg.external_inputs) {
    const TensorId id = backend.register_tensor(
        g.node(ext).out_shape, Layout::kCanonical, {}, "ext");
    Tensor input(g.node(ext).out_shape);
    input.fill_random(rng);
    backend.bind(id, input);
    io[ext] = id;
  }
  io[sg.terminal()] = backend.register_tensor(
      g.node(sg.terminal()).out_shape, Layout::kBricked, brick_extent, "out");

  MemoizedExecutor exec(g, sg, brick_extent, backend, io, workers);

  // Poll snapshots concurrently with the parallel run: the reader must be
  // race-free (TSan) and each counter monotonic across snapshots.
  std::atomic<bool> done{false};
  std::vector<MemoizedExecutor::Stats> seen;
  std::thread poller([&] {
    MemoizedExecutor::Stats prev;
    while (!done.load(std::memory_order_acquire)) {
      const MemoizedExecutor::Stats s = exec.stats_snapshot();
      EXPECT_GE(s.bricks_computed, prev.bricks_computed);
      EXPECT_GE(s.compulsory_atomics, prev.compulsory_atomics);
      EXPECT_GE(s.defers, prev.defers);
      prev = s;
      seen.push_back(s);
      std::this_thread::yield();
    }
  });

  ThreadPool pool(workers);
  exec.run_parallel(pool);
  done.store(true, std::memory_order_release);
  poller.join();

  // After finish() the aggregate and a fresh snapshot agree exactly.
  const MemoizedExecutor::Stats final_stats = exec.stats();
  const MemoizedExecutor::Stats snap = exec.stats_snapshot();
  EXPECT_EQ(final_stats.bricks_computed, snap.bricks_computed);
  EXPECT_EQ(final_stats.compulsory_atomics, snap.compulsory_atomics);
  EXPECT_EQ(final_stats.conflict_atomics, snap.conflict_atomics);
  EXPECT_EQ(final_stats.defers, snap.defers);
  EXPECT_GT(final_stats.bricks_computed, 0);
  EXPECT_EQ(final_stats.compulsory_atomics, 2 * final_stats.bricks_computed);
}

// ------------------------------------------------- Attempt durations

TEST(ObsEngine, AttemptAndSubgraphDurationsRecorded) {
  EngineOptions options;
  const ModelRun run = run_model(build_conv_chain_2d(3, 1, 20, 2), options);
  ASSERT_FALSE(run.result.reports.empty());
  for (const SubgraphReport& r : run.result.reports) {
    ASSERT_FALSE(r.attempts.empty());
    // Single successful attempt: its duration is the subgraph's.
    EXPECT_EQ(r.attempts.size(), 1u);
    EXPECT_GT(r.attempts.back().wall_seconds, 0.0);
    EXPECT_EQ(r.wall_seconds, r.attempts.back().wall_seconds);
  }
}

// ------------------------------------- Golden model-vs-measured profile

/// |observed - predicted| / observed must be within `tol`.
void expect_close(double predicted, double observed, double tol,
                  const char* what) {
  ASSERT_GT(observed, 0.0) << what;
  EXPECT_LE(std::abs(observed - predicted) / observed, tol)
      << what << ": predicted " << predicted << " observed " << observed;
}

void check_golden(Strategy strategy, double bytes_tol) {
  // Fixed graph: 3-layer 2D conv chain, 24x24 input, 2 channels. Small
  // enough that the whole working set is L2-resident, so observed DRAM
  // traffic is dominated by the compulsory bytes the predictor counts.
  EngineOptions options;
  options.force_strategy = strategy;
  options.profile = true;
  const ModelRun run = run_model(build_conv_chain_2d(3, 1, 24, 2), options);

  int modeled = 0;
  for (const SubgraphReport& r : run.result.reports) {
    if (!r.predicted.modeled) continue;
    ++modeled;
    SCOPED_TRACE(strategy_name(r.executed));
    EXPECT_EQ(r.executed, r.predicted.strategy);

    // Structural quantities are exact: the predictor walks the same brick
    // dependence graph the executor schedules.
    EXPECT_EQ(r.predicted.invocations, r.tally.invocations);
    EXPECT_EQ(r.predicted.compulsory_atomics, r.txns.atomics_compulsory);

    // Flops are exact for merged strategies (windows for padded, valid
    // extents for memoized), up to fp accumulation order.
    expect_close(r.predicted.flops + r.predicted.tc_flops,
                 r.tally.flops + r.tally.tc_flops, 1e-9, "flops");

    // DRAM traffic: predicted is compulsory-only; observed adds capacity
    // misses and line-granularity rounding, hence a stated tolerance.
    const i64 line = run.machine.line_bytes;
    expect_close(static_cast<double>(r.predicted.bytes_moved()),
                 static_cast<double>(r.txns.dram() * line), bytes_tol,
                 "bytes_moved");

    // Modeled time comes from the same §4 breakdown on both sides.
    const CostModel cost(run.machine);
    const double observed_s =
        cost.breakdown(r.txns, r.tally, r.plan.rho).total();
    expect_close(r.predicted.seconds, observed_s, bytes_tol, "seconds");
  }
  EXPECT_GT(modeled, 0);
}

TEST(ObsProfile, GoldenPaddedPrediction) {
  check_golden(Strategy::kPadded, 0.35);
}

TEST(ObsProfile, GoldenMemoizedPrediction) {
  check_golden(Strategy::kMemoized, 0.35);
}

TEST(ObsProfile, PredictionOffByDefault) {
  EngineOptions options;
  const ModelRun run = run_model(build_conv_chain_2d(2, 1, 18, 2), options);
  for (const SubgraphReport& r : run.result.reports) {
    EXPECT_FALSE(r.predicted.modeled);
    EXPECT_EQ(r.predicted.invocations, 0);
  }
}

// ----------------------------------------------------------- Run report

TEST(ObsReport, SchemaValidatesAndRoundTrips) {
  reset_obs();
  EngineOptions options;
  options.profile = true;
  const Graph graph = build_conv_chain_2d(3, 1, 20, 2);
  const ModelRun run = run_model(graph, options);

  const Json report =
      obs::make_run_report(graph, run.result, run.machine, true);
  ASSERT_TRUE(obs::validate_run_report(report).ok())
      << obs::validate_run_report(report).to_string();

  // Survives serialization: parse back and validate again.
  Result<Json> back = Json::parse(report.dump(1));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(obs::validate_run_report(back.value()).ok());
  EXPECT_TRUE(back.value() == report);

  // The human-facing table renders one row per subgraph.
  const std::string table = obs::report_table(report);
  EXPECT_NE(table.find("predicted vs observed"), std::string::npos);
  for (const SubgraphReport& r : run.result.reports) {
    EXPECT_NE(table.find(graph.node(r.plan.sg.terminal()).name),
              std::string::npos);
  }

  // Embedded metrics snapshot carries the engine counters.
  const Json* metrics_snap = report.find("metrics");
  ASSERT_NE(metrics_snap, nullptr);
  EXPECT_NE(metrics_snap->find("engine.subgraphs"), nullptr);
}

TEST(ObsReport, ValidatorRejectsMalformedReports) {
  EXPECT_FALSE(obs::validate_run_report(Json()).ok());
  Json wrong = Json::object();
  wrong.set("schema", "not-a-report");
  EXPECT_FALSE(obs::validate_run_report(wrong).ok());

  Json missing = Json::object();
  missing.set("schema", "brickdl-run-report-v1");
  EXPECT_FALSE(obs::validate_run_report(missing).ok());
}

}  // namespace
}  // namespace brickdl
