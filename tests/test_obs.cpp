// Observability layer (DESIGN.md §8): tracer export/parse-back and span
// nesting, metrics exactness under concurrency, mid-run memoized stats
// snapshots, model-vs-measured golden comparisons, and run-report schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "models/models.hpp"
#include "obs/calibrate.hpp"
#include "obs/events.hpp"
#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace brickdl {
namespace {

using obs::Json;

/// Every tracer/metrics test starts from a clean global state: drop all
/// recorded events and zero every instrument (both are process-wide).
void reset_obs() {
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
  obs::metrics().reset();
}

struct ModelRun {
  EngineResult result;
  MachineParams machine = MachineParams::a100();
};

ModelRun run_model(const Graph& graph, EngineOptions options) {
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(graph, sim);
  Engine engine(graph, std::move(options));
  ModelRun run;
  run.result = engine.run(backend);
  run.machine = sim.params();
  return run;
}

// ---------------------------------------------------------------- Json

TEST(ObsJson, RoundTripPreservesStructure) {
  Json doc = Json::object();
  doc.set("name", "brickdl");
  doc.set("count", i64{42});
  doc.set("ratio", 0.25);
  doc.set("ok", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(i64{1});
  arr.push_back("two");
  Json inner = Json::object();
  inner.set("deep", i64{-7});
  arr.push_back(std::move(inner));
  doc.set("items", std::move(arr));

  for (int indent : {-1, 1, 2}) {
    Result<Json> back = Json::parse(doc.dump(indent));
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_TRUE(back.value() == doc);
  }
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing", "nul", "\"\\q\"",
        "{\"a\" 1}", "[1 2]"}) {
    Result<Json> r = Json::parse(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidGraph);
    }
  }
}

// --------------------------------------------------------------- Tracer

TEST(ObsTrace, ExportIsWellFormedChromeTrace) {
  reset_obs();
  obs::Tracer::instance().set_enabled(true);
  obs::Tracer::set_thread_label("test-main");
  {
    obs::TraceSpan outer("engine", "outer", {{"k", 7}});
    obs::TraceSpan inner("layer", "inner");
  }
  obs::Tracer::instant("engine", "marker");
  obs::Tracer::instance().set_enabled(false);

  EXPECT_EQ(obs::Tracer::instance().event_count(), 3u);
  const std::string text = obs::Tracer::instance().export_chrome_json();
  Result<Json> doc = Json::parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_TRUE(obs::validate_chrome_trace(doc.value()).ok());

  // The calling thread's track is labeled via thread_name metadata.
  bool found_label = false;
  for (const Json& e : doc.value().find("traceEvents")->elements()) {
    const Json* ph = e.find("ph");
    if (ph && ph->str() == "M") {
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      if (args->find("name")->str() == "test-main") found_label = true;
    }
  }
  EXPECT_TRUE(found_label);
}

TEST(ObsTrace, RuntimeOffRecordsNothing) {
  reset_obs();
  ASSERT_FALSE(obs::Tracer::enabled());
  {
    obs::TraceSpan span("engine", "should-not-appear", {{"k", 1}});
    obs::TraceSpan gated("engine", "also-not", false);
  }
  obs::Tracer::instant("engine", "neither");
  // Gate=false spans record nothing even while the tracer is on.
  obs::Tracer::instance().set_enabled(true);
  { obs::TraceSpan gated("engine", "gated-off", false); }
  obs::Tracer::instance().set_enabled(false);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);

  // An engine run with tracing runtime-off must leave the rings empty too.
  EngineOptions options;
  (void)run_model(build_conv_chain_2d(2, 1, 18, 2), options);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST(ObsTrace, RingOverflowCountsDropped) {
  reset_obs();
  obs::Tracer::instance().clear();
  // New capacity applies to buffers registered afterwards; record from a
  // fresh thread so its ring is small.
  obs::Tracer::instance().set_ring_capacity(16);
  std::thread t([] {
    obs::Tracer::instance().set_enabled(true);
    for (int i = 0; i < 40; ++i) {
      obs::TraceSpan span("engine", "spin");
    }
    obs::Tracer::instance().set_enabled(false);
  });
  t.join();
  EXPECT_EQ(obs::Tracer::instance().dropped_events(), 24u);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 16u);
  obs::Tracer::instance().set_ring_capacity(size_t{1} << 16);
}

struct SpanRec {
  std::string name;
  std::string cat;
  double ts = 0.0;
  double dur = 0.0;
  i64 tid = 0;
  bool contains(const SpanRec& inner) const {
    // 1ns slack: the export rounds ns to µs doubles independently per event.
    constexpr double kSlackUs = 1e-3;
    return tid == inner.tid && ts <= inner.ts + kSlackUs &&
           inner.ts + inner.dur <= ts + dur + kSlackUs;
  }
};

std::vector<SpanRec> complete_spans(const Json& trace) {
  std::vector<SpanRec> spans;
  for (const Json& e : trace.find("traceEvents")->elements()) {
    if (e.find("ph")->str() != "X") continue;
    SpanRec s;
    s.name = e.find("name")->str();
    s.cat = e.find("cat")->str();
    s.ts = e.find("ts")->number();
    s.dur = e.find("dur")->number();
    s.tid = e.find("tid")->integer();
    spans.push_back(std::move(s));
  }
  return spans;
}

bool contained_in_any(const SpanRec& inner, const std::vector<SpanRec>& spans,
                      const std::string& cat,
                      const std::string& name_prefix = "") {
  for (const SpanRec& outer : spans) {
    if (outer.cat != cat) continue;
    if (!name_prefix.empty() &&
        outer.name.rfind(name_prefix, 0) != 0) {
      continue;
    }
    if (outer.contains(inner)) return true;
  }
  return false;
}

void check_span_hierarchy(Strategy strategy) {
  reset_obs();
  obs::Tracer::instance().set_enabled(true);
  EngineOptions options;
  options.force_strategy = strategy;
  (void)run_model(build_conv_chain_2d(3, 1, 20, 2), options);
  obs::Tracer::instance().set_enabled(false);

  const Json trace = obs::Tracer::instance().export_chrome_trace();
  ASSERT_TRUE(obs::validate_chrome_trace(trace).ok());
  const std::vector<SpanRec> spans = complete_spans(trace);

  int bricks = 0, layers = 0, subgraphs = 0;
  for (const SpanRec& s : spans) {
    if (s.cat == "brick") {
      // Every brick kernel span nests inside a layer span, which nests
      // inside a subgraph span, which nests inside the engine run span.
      EXPECT_TRUE(contained_in_any(s, spans, "layer")) << s.name;
      ++bricks;
    } else if (s.cat == "layer") {
      EXPECT_TRUE(contained_in_any(s, spans, "engine", "subgraph:"))
          << s.name;
      ++layers;
    } else if (s.cat == "engine" && s.name.rfind("subgraph:", 0) == 0) {
      EXPECT_TRUE(contained_in_any(s, spans, "engine", "run:")) << s.name;
      ++subgraphs;
    }
  }
  EXPECT_GT(bricks, 0);
  EXPECT_GT(layers, 0);
  EXPECT_GT(subgraphs, 0);
  EXPECT_GE(layers, bricks);  // a layer span wraps each brick kernel
}

TEST(ObsTrace, SpanNestingMatchesHierarchyPadded) {
  check_span_hierarchy(Strategy::kPadded);
}

TEST(ObsTrace, SpanNestingMatchesHierarchyMemoized) {
  check_span_hierarchy(Strategy::kMemoized);
}

// -------------------------------------------------------------- Metrics

TEST(ObsMetrics, ExactUnderConcurrentWriters) {
  reset_obs();
  constexpr int kThreads = 16;
  constexpr int kIters = 10000;
  obs::Counter& counter = obs::metrics().counter("test.concurrent");
  obs::Histogram& hist = obs::metrics().histogram("test.concurrent_hist");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.add(1);
        hist.observe(t + 1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter.value(), i64{kThreads} * kIters);
  EXPECT_EQ(hist.count(), i64{kThreads} * kIters);
  // Sum of (t+1) over threads, each observed kIters times.
  EXPECT_EQ(hist.sum(), i64{kIters} * kThreads * (kThreads + 1) / 2);
  EXPECT_EQ(hist.min(), 1);
  EXPECT_EQ(hist.max(), kThreads);
}

TEST(ObsMetrics, HistogramBucketsAndPercentiles) {
  reset_obs();
  obs::Histogram& hist = obs::metrics().histogram("test.hist");
  EXPECT_EQ(hist.min(), 0);  // empty
  EXPECT_EQ(hist.max(), 0);
  for (i64 v : {0, 1, 2, 3, 4, 7, 8, 1000}) hist.observe(v);
  EXPECT_EQ(hist.count(), 8);
  EXPECT_EQ(hist.sum(), 1025);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 1000);
  // Log-linear buckets: values below 2*kSubBuckets are exact, one per
  // bucket (index == value).
  for (i64 v : {0, 1, 2, 3, 4, 7, 8}) {
    EXPECT_EQ(obs::Histogram::bucket_of(v), v);
    EXPECT_EQ(hist.bucket_count(static_cast<int>(v)), 1) << v;
  }
  // 1000 lands in its octave's 16-way linear subdivision: [992, 1023].
  const int b = obs::Histogram::bucket_of(1000);
  EXPECT_EQ(obs::Histogram::bucket_lower(b), 992);
  EXPECT_EQ(obs::Histogram::bucket_upper(b), 1023);
  EXPECT_EQ(hist.bucket_count(b), 1);
  // The quantile read clamps the bucket's upper bound to the observed max.
  EXPECT_EQ(hist.percentile(0.99), 1000);
  hist.reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 0);
  hist.observe(5);  // post-reset sentinel behavior
  EXPECT_EQ(hist.min(), 5);
  EXPECT_EQ(hist.max(), 5);
}

TEST(ObsMetrics, HistogramBucketBoundsPartitionTheRange) {
  // Every bucket's [lower, upper] must tile the i64 range: bucket_of maps
  // both endpoints back to the bucket, and upper+1 is the next lower.
  i64 expected_lower = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    const i64 lo = obs::Histogram::bucket_lower(b);
    const i64 hi = obs::Histogram::bucket_upper(b);
    ASSERT_EQ(lo, expected_lower) << "bucket " << b;
    ASSERT_LE(lo, hi) << "bucket " << b;
    ASSERT_EQ(obs::Histogram::bucket_of(lo), b);
    ASSERT_EQ(obs::Histogram::bucket_of(hi), b);
    if (b + 1 == obs::Histogram::kBuckets) break;
    expected_lower = hi + 1;
  }
  // Relative quantile error is bounded by the sub-bucket width: for any
  // value >= 32, upper/lower stays below 1 + 1/kSubBuckets.
  for (i64 v : {i64{32}, i64{1000}, i64{123456789}, i64{1} << 40}) {
    const int b = obs::Histogram::bucket_of(v);
    const double lo = static_cast<double>(obs::Histogram::bucket_lower(b));
    const double hi = static_cast<double>(obs::Histogram::bucket_upper(b));
    EXPECT_LE(hi / lo, 1.0 + 1.0 / obs::Histogram::kSubBuckets + 1e-9) << v;
  }
}

TEST(ObsMetrics, HistogramExactUnderConcurrentWriters) {
  // 16 writers x 20k samples from disjoint deterministic streams: count and
  // sum must be exact, every per-thread sample must land in the bucket
  // bucket_of says, and quantiles must respect the log-linear error bound.
  reset_obs();
  constexpr int kThreads = 16;
  constexpr int kIters = 20000;
  obs::Histogram& hist = obs::metrics().histogram("test.concurrent_exact");

  std::vector<i64> sums(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      u64 state = 0x9e3779b97f4a7c15ull + static_cast<u64>(t);
      i64 local_sum = 0;
      for (int i = 0; i < kIters; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        // Spread samples across octaves: low 20 bits, shifted by 0..15.
        const i64 v = static_cast<i64>((state >> 24) & 0xfffff) >>
                      ((state >> 8) & 15);
        hist.observe(v);
        local_sum += v;
      }
      sums[t] = local_sum;
    });
  }
  for (auto& t : threads) t.join();

  i64 total = 0;
  for (i64 s : sums) total += s;
  EXPECT_EQ(hist.count(), i64{kThreads} * kIters);
  EXPECT_EQ(hist.sum(), total);

  // Bucket counts sum to count() (no lost or double-counted samples).
  i64 bucketed = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    bucketed += hist.bucket_count(b);
  }
  EXPECT_EQ(bucketed, hist.count());

  // Quantile error bound: replay the same streams, compute the exact
  // quantiles, and require the histogram read within 1/kSubBuckets.
  std::vector<i64> all;
  all.reserve(static_cast<size_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    u64 state = 0x9e3779b97f4a7c15ull + static_cast<u64>(t);
    for (int i = 0; i < kIters; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      all.push_back(static_cast<i64>((state >> 24) & 0xfffff) >>
                    ((state >> 8) & 15));
    }
  }
  std::sort(all.begin(), all.end());
  for (double p : {0.5, 0.95, 0.99}) {
    const i64 exact =
        all[static_cast<size_t>(p * static_cast<double>(all.size() - 1))];
    const i64 approx = hist.percentile(p);
    EXPECT_GE(approx, exact) << p;  // upper-bound read
    const double bound =
        (1.0 + 1.0 / obs::Histogram::kSubBuckets) *
            static_cast<double>(std::max<i64>(exact, 1)) +
        1.0;
    EXPECT_LE(static_cast<double>(approx), bound) << p;
  }
}

TEST(ObsMetrics, RegistryJsonSnapshot) {
  reset_obs();
  obs::metrics().counter("test.a").add(3);
  obs::metrics().gauge("test.g").set(1.5);
  obs::metrics().histogram("test.h").observe(4);
  const Json snap = obs::metrics().to_json();
  ASSERT_TRUE(snap.is_object());
  const Json* a = snap.find("test.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->integer(), 3);
  const Json* g = snap.find("test.g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->number(), 1.5);
  const Json* h = snap.find("test.h");
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->is_object());
  EXPECT_EQ(h->find("count")->integer(), 1);
  EXPECT_EQ(h->find("sum")->integer(), 4);
}

TEST(ObsMetrics, ExecutorCountersLandOnRegistry) {
  reset_obs();
  EngineOptions options;
  options.force_strategy = Strategy::kMemoized;
  const ModelRun run = run_model(build_conv_chain_2d(2, 1, 18, 2), options);

  i64 bricks = 0, atomics = 0;
  for (const SubgraphReport& r : run.result.reports) {
    bricks += r.memo.bricks_computed;
    atomics += r.memo.compulsory_atomics;
  }
  ASSERT_GT(bricks, 0);
  // The memoized executor publishes its Stats onto the shared registry
  // (satellite: ad-hoc counters migrated to metrics).
  EXPECT_EQ(obs::metrics().counter("memo.bricks_computed").value(), bricks);
  EXPECT_EQ(obs::metrics().counter("memo.compulsory_atomics").value(),
            atomics);
  EXPECT_EQ(obs::metrics().counter("memo.reclaims").value(), 0);
  EXPECT_GT(obs::metrics().counter("engine.subgraphs").value(), 0);
  EXPECT_GT(obs::metrics().counter("partition.runs").value(), 0);
}

// --------------------------------------------- Memoized stats snapshots

Subgraph all_non_input_nodes(const Graph& g) {
  Subgraph sg;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kInput) {
      sg.external_inputs.push_back(n.id);
    } else {
      sg.nodes.push_back(n.id);
    }
  }
  sg.merged = true;
  return sg;
}

TEST(ObsMemoStats, MidRunSnapshotIsMonotonicAndConverges) {
  const Graph g = build_conv_chain_2d(3, 1, 24, 2);
  const Subgraph sg = all_non_input_nodes(g);
  const Dims brick_extent{1, 4, 4};
  const int workers = 8;

  WeightStore ws(5);
  NumericBackend backend(g, ws, workers);
  std::unordered_map<int, TensorId> io;
  Rng rng(77);
  for (int ext : sg.external_inputs) {
    const TensorId id = backend.register_tensor(
        g.node(ext).out_shape, Layout::kCanonical, {}, "ext");
    Tensor input(g.node(ext).out_shape);
    input.fill_random(rng);
    backend.bind(id, input);
    io[ext] = id;
  }
  io[sg.terminal()] = backend.register_tensor(
      g.node(sg.terminal()).out_shape, Layout::kBricked, brick_extent, "out");

  MemoizedExecutor exec(g, sg, brick_extent, backend, io, workers);

  // Poll snapshots concurrently with the parallel run: the reader must be
  // race-free (TSan) and each counter monotonic across snapshots.
  std::atomic<bool> done{false};
  std::vector<MemoizedExecutor::Stats> seen;
  std::thread poller([&] {
    MemoizedExecutor::Stats prev;
    while (!done.load(std::memory_order_acquire)) {
      const MemoizedExecutor::Stats s = exec.stats_snapshot();
      EXPECT_GE(s.bricks_computed, prev.bricks_computed);
      EXPECT_GE(s.compulsory_atomics, prev.compulsory_atomics);
      EXPECT_GE(s.defers, prev.defers);
      prev = s;
      seen.push_back(s);
      std::this_thread::yield();
    }
  });

  ThreadPool pool(workers);
  exec.run_parallel(pool);
  done.store(true, std::memory_order_release);
  poller.join();

  // After finish() the aggregate and a fresh snapshot agree exactly.
  const MemoizedExecutor::Stats final_stats = exec.stats();
  const MemoizedExecutor::Stats snap = exec.stats_snapshot();
  EXPECT_EQ(final_stats.bricks_computed, snap.bricks_computed);
  EXPECT_EQ(final_stats.compulsory_atomics, snap.compulsory_atomics);
  EXPECT_EQ(final_stats.conflict_atomics, snap.conflict_atomics);
  EXPECT_EQ(final_stats.defers, snap.defers);
  EXPECT_GT(final_stats.bricks_computed, 0);
  EXPECT_EQ(final_stats.compulsory_atomics, 2 * final_stats.bricks_computed);
}

// ------------------------------------------------- Attempt durations

TEST(ObsEngine, AttemptAndSubgraphDurationsRecorded) {
  EngineOptions options;
  const ModelRun run = run_model(build_conv_chain_2d(3, 1, 20, 2), options);
  ASSERT_FALSE(run.result.reports.empty());
  for (const SubgraphReport& r : run.result.reports) {
    ASSERT_FALSE(r.attempts.empty());
    // Single successful attempt: its duration is the subgraph's.
    EXPECT_EQ(r.attempts.size(), 1u);
    EXPECT_GT(r.attempts.back().wall_seconds, 0.0);
    EXPECT_EQ(r.wall_seconds, r.attempts.back().wall_seconds);
  }
}

// ------------------------------------- Golden model-vs-measured profile

/// |observed - predicted| / observed must be within `tol`.
void expect_close(double predicted, double observed, double tol,
                  const char* what) {
  ASSERT_GT(observed, 0.0) << what;
  EXPECT_LE(std::abs(observed - predicted) / observed, tol)
      << what << ": predicted " << predicted << " observed " << observed;
}

void check_golden(Strategy strategy, double bytes_tol) {
  // Fixed graph: 3-layer 2D conv chain, 24x24 input, 2 channels. Small
  // enough that the whole working set is L2-resident, so observed DRAM
  // traffic is dominated by the compulsory bytes the predictor counts.
  EngineOptions options;
  options.force_strategy = strategy;
  options.profile = true;
  const ModelRun run = run_model(build_conv_chain_2d(3, 1, 24, 2), options);

  int modeled = 0;
  for (const SubgraphReport& r : run.result.reports) {
    if (!r.predicted.modeled) continue;
    ++modeled;
    SCOPED_TRACE(strategy_name(r.executed));
    EXPECT_EQ(r.executed, r.predicted.strategy);

    // Structural quantities are exact: the predictor walks the same brick
    // dependence graph the executor schedules.
    EXPECT_EQ(r.predicted.invocations, r.tally.invocations);
    EXPECT_EQ(r.predicted.compulsory_atomics, r.txns.atomics_compulsory);

    // Flops are exact for merged strategies (windows for padded, valid
    // extents for memoized), up to fp accumulation order.
    expect_close(r.predicted.flops + r.predicted.tc_flops,
                 r.tally.flops + r.tally.tc_flops, 1e-9, "flops");

    // DRAM traffic: predicted is compulsory-only; observed adds capacity
    // misses and line-granularity rounding, hence a stated tolerance.
    const i64 line = run.machine.line_bytes;
    expect_close(static_cast<double>(r.predicted.bytes_moved()),
                 static_cast<double>(r.txns.dram() * line), bytes_tol,
                 "bytes_moved");

    // Modeled time comes from the same §4 breakdown on both sides.
    const CostModel cost(run.machine);
    const double observed_s =
        cost.breakdown(r.txns, r.tally, r.plan.rho).total();
    expect_close(r.predicted.seconds, observed_s, bytes_tol, "seconds");
  }
  EXPECT_GT(modeled, 0);
}

TEST(ObsProfile, GoldenPaddedPrediction) {
  check_golden(Strategy::kPadded, 0.35);
}

TEST(ObsProfile, GoldenMemoizedPrediction) {
  check_golden(Strategy::kMemoized, 0.35);
}

TEST(ObsProfile, PredictionOffByDefault) {
  EngineOptions options;
  const ModelRun run = run_model(build_conv_chain_2d(2, 1, 18, 2), options);
  for (const SubgraphReport& r : run.result.reports) {
    EXPECT_FALSE(r.predicted.modeled);
    EXPECT_EQ(r.predicted.invocations, 0);
  }
}

// ----------------------------------------------------------- Run report

TEST(ObsReport, SchemaValidatesAndRoundTrips) {
  reset_obs();
  EngineOptions options;
  options.profile = true;
  const Graph graph = build_conv_chain_2d(3, 1, 20, 2);
  const ModelRun run = run_model(graph, options);

  const Json report =
      obs::make_run_report(graph, run.result, run.machine, true);
  ASSERT_TRUE(obs::validate_run_report(report).ok())
      << obs::validate_run_report(report).to_string();

  // Survives serialization: parse back and validate again.
  Result<Json> back = Json::parse(report.dump(1));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(obs::validate_run_report(back.value()).ok());
  EXPECT_TRUE(back.value() == report);

  // The human-facing table renders one row per subgraph.
  const std::string table = obs::report_table(report);
  EXPECT_NE(table.find("predicted vs observed"), std::string::npos);
  for (const SubgraphReport& r : run.result.reports) {
    EXPECT_NE(table.find(graph.node(r.plan.sg.terminal()).name),
              std::string::npos);
  }

  // Embedded metrics snapshot carries the engine counters.
  const Json* metrics_snap = report.find("metrics");
  ASSERT_NE(metrics_snap, nullptr);
  EXPECT_NE(metrics_snap->find("engine.subgraphs"), nullptr);
}

TEST(ObsReport, ValidatorRejectsMalformedReports) {
  EXPECT_FALSE(obs::validate_run_report(Json()).ok());
  Json wrong = Json::object();
  wrong.set("schema", "not-a-report");
  const Status unknown = obs::validate_run_report(wrong);
  EXPECT_FALSE(unknown.ok());
  // An unrecognized schema version is a *named* failure, distinct from
  // structural breakage, so callers can branch on forward-compat.
  EXPECT_EQ(unknown.code(), StatusCode::kUnknownSchema);

  Json missing = Json::object();
  missing.set("schema", "brickdl-run-report-v1");
  const Status structural = obs::validate_run_report(missing);
  EXPECT_FALSE(structural.ok());
  EXPECT_EQ(structural.code(), StatusCode::kInvalidGraph);
}

// ------------------------------------------------------------ Flow links

TEST(ObsTrace, FlowEventsExportAndValidate) {
  reset_obs();
  obs::Tracer::instance().set_enabled(true);
  {
    obs::TraceSpan producer("serve", "flush");
    obs::Tracer::flow("serve", "req", 42, 's');
  }
  {
    obs::TraceSpan relay("serve", "batch");
    obs::Tracer::flow("serve", "req", 42, 't');
  }
  {
    obs::TraceSpan consumer("serve", "finish");
    obs::Tracer::flow("serve", "req", 42, 'f');
  }
  obs::Tracer::instance().set_enabled(false);

  const Json trace = obs::Tracer::instance().export_chrome_trace();
  ASSERT_TRUE(obs::validate_chrome_trace(trace).ok())
      << obs::validate_chrome_trace(trace).to_string();

  int starts = 0, steps = 0, finishes = 0;
  for (const Json& e : trace.find("traceEvents")->elements()) {
    const std::string& ph = e.find("ph")->str();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    ASSERT_NE(e.find("id"), nullptr);
    EXPECT_EQ(e.find("id")->integer(), 42);
    if (ph == "s") ++starts;
    if (ph == "t") ++steps;
    if (ph == "f") {
      ++finishes;
      // Terminating flow events must bind to the enclosing slice.
      ASSERT_NE(e.find("bp"), nullptr);
      EXPECT_EQ(e.find("bp")->str(), "e");
    }
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(steps, 1);
  EXPECT_EQ(finishes, 1);
}

TEST(ObsTrace, ValidatorRejectsFlowEventWithoutId) {
  Json bad = Json::object();
  Json events = Json::array();
  Json e = Json::object();
  e.set("name", "req");
  e.set("cat", "serve");
  e.set("ph", "s");
  e.set("ts", 1.0);
  e.set("pid", i64{1});
  e.set("tid", i64{1});
  events.push_back(std::move(e));
  bad.set("traceEvents", std::move(events));
  const Status status = obs::validate_chrome_trace(bad);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidGraph);
}

// ------------------------------------------------------------- Event log

TEST(ObsEvents, RecordSnapshotRoundTrip) {
  obs::EventLog log(64);
  log.record(obs::ServeEvent::kAdmit, 7, 3, 0);
  log.record(obs::ServeEvent::kShedOverload, 8, 12, 0);
  log.record(obs::ServeEvent::kBreakerOpen, 0, 4, 1);
  EXPECT_EQ(log.total(), 3u);

  const std::vector<obs::EventRecord> tail = log.snapshot_last(10);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].kind, obs::ServeEvent::kAdmit);
  EXPECT_EQ(tail[0].request_id, 7u);
  EXPECT_EQ(tail[0].a, 3);
  EXPECT_EQ(tail[1].kind, obs::ServeEvent::kShedOverload);
  EXPECT_EQ(tail[2].kind, obs::ServeEvent::kBreakerOpen);
  EXPECT_LT(tail[0].seq, tail[1].seq);
  EXPECT_LT(tail[1].seq, tail[2].seq);
  EXPECT_LE(tail[0].ts_ns, tail[2].ts_ns);

  const Json doc = log.to_json(10);
  const Json* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ(events->elements()[0].find("event")->str(), "admit");
  EXPECT_EQ(events->elements()[1].find("event")->str(), "shed.overload");
  EXPECT_EQ(events->elements()[2].find("event")->str(), "breaker.open");
}

TEST(ObsEvents, ConcurrentWritersNeverTearSnapshots) {
  // 8 writers lap a small ring while a reader snapshots continuously. Every
  // accepted record must be internally consistent (payload fields encode the
  // writer id) and seqs must be strictly increasing within a snapshot.
  obs::EventLog log(128);
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<obs::EventRecord> snap = log.snapshot_last(64);
      u64 prev_seq = 0;
      for (const obs::EventRecord& r : snap) {
        if (r.seq <= prev_seq) torn.fetch_add(1);
        prev_seq = r.seq;
        // Writer w records (request_id=w, a=w*2, b=w*3): any mismatch is a
        // torn read the seqlock should have rejected.
        const i64 w = static_cast<i64>(r.request_id);
        if (r.a != w * 2 || r.b != w * 3) torn.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        log.record(obs::ServeEvent::kEnqueue, static_cast<u64>(w), w * 2,
                   w * 3);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(log.total(), static_cast<u64>(kWriters) * kPerWriter);
  // Quiescent ring: a full snapshot is coherent and dense at the tail.
  const std::vector<obs::EventRecord> snap = log.snapshot_last(128);
  EXPECT_EQ(snap.size(), 128u);
  EXPECT_EQ(snap.back().seq, static_cast<u64>(kWriters) * kPerWriter);
}

// -------------------------------------------------------------- Exporter

TEST(ObsExporter, PrometheusTextMatchesRegistryExactly) {
  obs::MetricsRegistry reg;
  reg.counter("serve.completed").add(41);
  reg.gauge("serve.depth").set(2.5);
  obs::Histogram& h = reg.histogram("serve.request_us");
  for (i64 v : {3, 3, 40, 1000}) h.observe(v);

  const std::string text = obs::prometheus_text(reg);

  // Parse the exposition back into name -> value.
  std::map<std::string, double> series;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    series[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }

  // Dotted names are mangled; values match the instruments exactly.
  EXPECT_EQ(series.at("serve_completed"), 41.0);
  EXPECT_EQ(series.at("serve_depth"), 2.5);
  EXPECT_EQ(series.at("serve_request_us_count"), 4.0);
  EXPECT_EQ(series.at("serve_request_us_sum"), 1046.0);
  EXPECT_EQ(series.at("serve_request_us_bucket{le=\"+Inf\"}"), 4.0);

  // Cumulative buckets reconstruct the histogram: each non-empty bucket
  // appears with the exact log-linear upper bound and running total.
  i64 running = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    const i64 c = h.bucket_count(b);
    if (c == 0) continue;
    running += c;
    const std::string key = "serve_request_us_bucket{le=\"" +
                            std::to_string(obs::Histogram::bucket_upper(b)) +
                            "\"}";
    ASSERT_TRUE(series.count(key)) << key;
    EXPECT_EQ(series.at(key), static_cast<double>(running)) << key;
  }

  // Nothing in the exposition beyond the three instruments' series.
  for (const auto& [name, value] : series) {
    EXPECT_TRUE(name.rfind("serve_completed", 0) == 0 ||
                name.rfind("serve_depth", 0) == 0 ||
                name.rfind("serve_request_us", 0) == 0)
        << name;
  }
}

TEST(ObsExporter, JsonlSnapshotsAndSinkDeliverSchema) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "brickdl_exporter_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string jsonl = (dir / "metrics.jsonl").string();
  const std::string prom = (dir / "metrics.prom").string();

  obs::MetricsRegistry reg;
  reg.counter("test.ticks").add(5);

  std::atomic<int> sink_calls{0};
  obs::MetricsExporter::Options options;
  options.interval_ms = 10;
  options.jsonl_path = jsonl;
  options.prom_path = prom;
  options.sink = [&](const std::string& line) {
    ++sink_calls;
    Result<Json> doc = Json::parse(line);
    ASSERT_TRUE(doc.ok()) << doc.status().to_string();
    EXPECT_EQ(doc.value().find("schema")->str(), "brickdl-metrics-v1");
  };
  {
    obs::MetricsExporter exporter(options, &reg);
    exporter.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(35));
    reg.counter("test.ticks").add(2);
    exporter.stop();  // final snapshot
    EXPECT_GE(exporter.snapshots_taken(), 2u);
    EXPECT_EQ(static_cast<u64>(sink_calls.load()),
              exporter.snapshots_taken());
  }

  // Each JSONL line parses; seq increases; the last reflects the final add.
  std::ifstream in(jsonl);
  ASSERT_TRUE(in.good());
  std::string line;
  i64 prev_seq = 0;
  Json last;
  size_t lines = 0;
  while (std::getline(in, line)) {
    Result<Json> doc = Json::parse(line);
    ASSERT_TRUE(doc.ok()) << doc.status().to_string();
    const i64 seq = doc.value().find("seq")->integer();
    EXPECT_GT(seq, prev_seq);
    prev_seq = seq;
    last = std::move(doc.value());
    ++lines;
  }
  ASSERT_GE(lines, 2u);
  EXPECT_EQ(last.find("metrics")->find("test.ticks")->integer(), 7);

  // The Prometheus textfile holds the final state too.
  std::ifstream pin(prom);
  ASSERT_TRUE(pin.good());
  std::stringstream buffer;
  buffer << pin.rdbuf();
  EXPECT_NE(buffer.str().find("test_ticks 7"), std::string::npos)
      << buffer.str();
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------- Flight

TEST(ObsFlight, RecordRoundTripsAndValidates) {
  reset_obs();
  obs::events().clear();
  obs::events().record(obs::ServeEvent::kAdmit, 9, 1, 0);
  obs::events().record(obs::ServeEvent::kBreakerOpen, 9, 4, 1);
  obs::metrics().counter("serve.breaker.opens").add(1);

  const Json record = obs::make_flight_record(
      obs::FlightTrigger::kBreakerOpen, 9, "test trigger");
  ASSERT_TRUE(obs::validate_flight_record(record).ok())
      << obs::validate_flight_record(record).to_string();
  EXPECT_EQ(record.find("trigger")->str(), "breaker.open");
  EXPECT_EQ(record.find("request")->integer(), 9);
  EXPECT_EQ(record.find("events")->size(), 2u);
  // Both logged events concern request 9, so the filtered view holds both.
  EXPECT_EQ(record.find("request_events")->size(), 2u);
  EXPECT_EQ(
      record.find("metrics")->find("serve.breaker.opens")->integer(), 1);

  // Survives serialization.
  Result<Json> back = Json::parse(record.dump(1));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(obs::validate_flight_record(back.value()).ok());

  // Unknown schema versions are the named kUnknownSchema failure.
  Json future = record;
  future.set("schema", "brickdl-flight-v2");
  const Status status = obs::validate_flight_record(future);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnknownSchema);

  // Structural breakage stays kInvalidGraph.
  Json broken = record;
  broken.set("events", "not-an-array");
  EXPECT_EQ(obs::validate_flight_record(broken).code(),
            StatusCode::kInvalidGraph);
  obs::events().clear();
}

TEST(ObsFlight, RecorderDumpsUnderPerTriggerCap) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "brickdl_flight_test";
  std::filesystem::remove_all(dir);

  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.reset();
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.dump(obs::FlightTrigger::kFailure, 1, "disabled"), "");
  EXPECT_EQ(recorder.records_written(), 0u);
  EXPECT_EQ(recorder.records_suppressed(), 1u);

  obs::FlightRecorder::Options options;
  options.dir = dir.string();
  options.max_records = 1;  // per trigger kind
  recorder.configure(options);
  ASSERT_TRUE(recorder.enabled());

  const std::string p1 =
      recorder.dump(obs::FlightTrigger::kDegradedRun, 2, "first degraded");
  ASSERT_FALSE(p1.empty());
  // Cap reached for kDegradedRun: second dump is suppressed...
  EXPECT_EQ(
      recorder.dump(obs::FlightTrigger::kDegradedRun, 3, "second degraded"),
      "");
  // ...but a breaker-open record still gets through (per-trigger budget).
  const std::string p2 =
      recorder.dump(obs::FlightTrigger::kBreakerOpen, 4, "breaker");
  ASSERT_FALSE(p2.empty());
  EXPECT_EQ(recorder.records_written(), 2u);
  EXPECT_EQ(recorder.records_suppressed(), 2u);

  for (const std::string& path : {p1, p2}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<Json> doc = Json::parse(buffer.str());
    ASSERT_TRUE(doc.ok()) << doc.status().to_string();
    EXPECT_TRUE(obs::validate_flight_record(doc.value()).ok())
        << obs::validate_flight_record(doc.value()).to_string();
  }

  recorder.reset();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ Calibration

/// Synthesize a corpus whose measured responses were generated *exactly* by
/// `truth`: each per-term response is what the stock-priced regression would
/// see if the hardware really ran at the planted constants. The fit must then
/// recover `truth` (the regression is exact, no noise).
obs::CalibrationSample planted_sample(int i,
                                      const obs::CalibratedConstants& truth,
                                      const MachineParams& stock) {
  obs::CalibrationSample s;
  // Diverse, linearly independent regressors across the corpus so the 3x3
  // compute system is well conditioned.
  s.pred_bytes = 1e6 * (1 + i) * (1 + i);
  s.pred_atomics = 1e3 * (1 + (i * 7) % 5);
  s.pred_invocations = 100.0 + 37.0 * i * i;
  s.pred_flops = 1e9 * (1.0 + 0.6 * i);
  s.pred_tc_flops = (i % 2 == 0) ? 4e8 * (1 + i) : 9e8;
  s.rho = 0.0;  // saturated: no utilization stretch

  // Invert each regression: observed counters that price (at stock) to the
  // per-term seconds `truth` would have produced.
  s.obs_bytes = s.pred_bytes * stock.hbm_bandwidth / truth.effective_bandwidth;
  s.obs_atomics = s.pred_atomics * truth.t_atomic / stock.t_atomic;
  s.obs_invocations = 0.0;
  s.obs_tc_flops = 0.0;
  s.obs_flops = stock.flops_per_second *
                (s.pred_invocations * truth.t_launch +
                 s.pred_flops / truth.flops_per_second +
                 s.pred_tc_flops / truth.tensor_core_flops_per_second);
  s.obs_seconds =
      obs::CalibrationCorpus::predicted_seconds(s, truth, stock.num_sms);
  s.wall_seconds = truth.wall_scale * s.obs_seconds;
  return s;
}

TEST(ObsCalibrate, FitRecoversPlantedConstants) {
  const MachineParams stock = MachineParams::a100();
  obs::CalibratedConstants truth;
  truth.effective_bandwidth = 0.6e12;  // capacity misses eat 60% of stock BW
  truth.t_atomic = 2.5 * stock.t_atomic;
  truth.t_launch = 0.4 * stock.t_launch;
  truth.flops_per_second = 0.7 * stock.flops_per_second;
  truth.tensor_core_flops_per_second =
      1.3 * stock.tensor_core_flops_per_second;
  truth.wall_scale = 2.0;

  obs::CalibrationCorpus corpus;
  for (int i = 0; i < 6; ++i) {
    corpus.add_sample(planted_sample(i, truth, stock));
  }
  Result<obs::CalibrationFit> fit = corpus.fit(stock);
  ASSERT_TRUE(fit.ok()) << fit.status().to_string();
  const obs::CalibratedConstants& c = fit.value().constants;
  EXPECT_NEAR(c.effective_bandwidth / truth.effective_bandwidth, 1.0, 1e-6);
  EXPECT_NEAR(c.t_atomic / truth.t_atomic, 1.0, 1e-6);
  EXPECT_NEAR(c.t_launch / truth.t_launch, 1.0, 1e-6);
  EXPECT_NEAR(c.flops_per_second / truth.flops_per_second, 1.0, 1e-6);
  EXPECT_NEAR(c.tensor_core_flops_per_second /
                  truth.tensor_core_flops_per_second,
              1.0, 1e-6);
  EXPECT_NEAR(c.wall_scale, 2.0, 1e-6);

  // The planted corpus is exactly explainable, so the calibrated residual
  // collapses while the stock one does not (the constants genuinely moved).
  EXPECT_LT(fit.value().calibrated_mean_rel_error, 1e-6);
  EXPECT_GT(fit.value().stock_mean_rel_error, 0.1);
}

TEST(ObsCalibrate, CalibratedResidualNeverWorseThanStock) {
  // Small, skewed corpora are where naive per-term least squares can compose
  // *worse* than stock on total seconds; the fit's take-best selection must
  // never let that reach the emitted constants.
  const MachineParams stock = MachineParams::a100();
  obs::CalibrationCorpus corpus;
  obs::CalibrationSample a;
  a.pred_bytes = 5e6;
  a.pred_invocations = 200;
  a.pred_flops = 2e9;
  a.obs_bytes = 9e6;
  a.obs_atomics = 4e4;  // conflict-heavy: no predicted atomics at all
  a.obs_invocations = 200;
  a.obs_flops = 2e9;
  a.obs_seconds = 1e-4;
  a.wall_seconds = 3e-4;
  corpus.add_sample(a);
  obs::CalibrationSample b = a;
  b.pred_bytes = 1e5;
  b.obs_bytes = 8e6;
  b.obs_seconds = 2e-6;
  corpus.add_sample(b);

  Result<obs::CalibrationFit> fit = corpus.fit(stock);
  ASSERT_TRUE(fit.ok()) << fit.status().to_string();
  EXPECT_TRUE(fit.value().constants.valid());
  EXPECT_LE(fit.value().calibrated_mean_rel_error,
            fit.value().stock_mean_rel_error);
}

TEST(ObsCalibrate, EmptyCorpusIsInvalidOptions) {
  const Result<obs::CalibrationFit> fit =
      obs::CalibrationCorpus().fit(MachineParams::a100());
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidOptions);
}

TEST(ObsCalibrate, JsonRoundTripsExactlyAndValidates) {
  const MachineParams stock = MachineParams::a100();
  obs::CalibratedConstants truth;
  truth.effective_bandwidth = 0.5e12;
  truth.t_atomic = 2.0 * stock.t_atomic;
  truth.t_launch = 0.5 * stock.t_launch;
  truth.flops_per_second = 0.8 * stock.flops_per_second;
  truth.tensor_core_flops_per_second = stock.tensor_core_flops_per_second;
  truth.wall_scale = 1.75;
  obs::CalibrationCorpus corpus;
  for (int i = 0; i < 5; ++i) {
    corpus.add_sample(planted_sample(i, truth, stock));
  }
  Result<obs::CalibrationFit> fit = corpus.fit(stock);
  ASSERT_TRUE(fit.ok());

  const Json doc = fit.value().to_json();
  ASSERT_TRUE(obs::validate_calibration(doc).ok())
      << obs::validate_calibration(doc).to_string();

  // %.17g numbers survive dump -> parse bit-exactly.
  Result<Json> back = Json::parse(doc.dump(1));
  ASSERT_TRUE(back.ok());
  Result<obs::CalibratedConstants> parsed =
      obs::calibration_from_json(back.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const obs::CalibratedConstants& c = fit.value().constants;
  EXPECT_EQ(parsed.value().effective_bandwidth, c.effective_bandwidth);
  EXPECT_EQ(parsed.value().t_atomic, c.t_atomic);
  EXPECT_EQ(parsed.value().t_launch, c.t_launch);
  EXPECT_EQ(parsed.value().flops_per_second, c.flops_per_second);
  EXPECT_EQ(parsed.value().tensor_core_flops_per_second,
            c.tensor_core_flops_per_second);
  EXPECT_EQ(parsed.value().wall_scale, c.wall_scale);
}

TEST(ObsCalibrate, ValidatorNamesSchemaAndStructuralFailures) {
  Json wrong = Json::object();
  wrong.set("schema", "brickdl-calibration-v999");
  EXPECT_EQ(obs::validate_calibration(wrong).code(),
            StatusCode::kUnknownSchema);

  Json missing = Json::object();
  missing.set("schema", "brickdl-calibration-v1");
  EXPECT_EQ(obs::validate_calibration(missing).code(),
            StatusCode::kInvalidGraph);
  EXPECT_EQ(obs::calibration_from_json(missing).status().code(),
            StatusCode::kInvalidGraph);
}

TEST(ObsCalibrate, AddReportExtractsCleanModeledSubgraphs) {
  reset_obs();
  EngineOptions options;
  options.profile = true;
  const Graph graph = build_conv_chain_2d(3, 1, 24, 2);
  const ModelRun run = run_model(graph, options);
  const Json report =
      obs::make_run_report(graph, run.result, run.machine, true);

  obs::CalibrationCorpus corpus;
  ASSERT_TRUE(corpus.add_report(report).ok());
  EXPECT_GT(corpus.size(), 0);
  for (const obs::CalibrationSample& s : corpus.samples()) {
    EXPECT_GT(s.obs_seconds, 0.0);
    EXPECT_GE(s.wall_seconds, 0.0);
    EXPECT_GT(s.pred_bytes, 0.0);
  }

  // A corpus built from a real profiled run must fit to usable constants
  // whose residual never regresses past stock.
  Result<obs::CalibrationFit> fit = corpus.fit(run.machine);
  ASSERT_TRUE(fit.ok()) << fit.status().to_string();
  EXPECT_TRUE(fit.value().constants.valid());
  EXPECT_LE(fit.value().calibrated_mean_rel_error,
            fit.value().stock_mean_rel_error);

  // Not a run report at all: named reject, corpus unchanged.
  const i64 before = corpus.size();
  Json bogus = Json::object();
  bogus.set("schema", "nope");
  EXPECT_EQ(corpus.add_report(bogus).code(), StatusCode::kUnknownSchema);
  EXPECT_EQ(corpus.size(), before);
}

}  // namespace
}  // namespace brickdl
