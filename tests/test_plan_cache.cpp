// Persistent plan cache suite (DESIGN.md §15, CTest label `plan_cache`).
//
// Cold/warm engine parity (a warm-started engine must produce bit-identical
// output from the persisted plan), cache-poisoning rejection (truncation,
// wrong schema, a signature that does not match the graph in hand — all
// named-status rejects with cold fallback, never a crash), key separation
// (different planning options miss rather than reject; calibrated vs
// uncalibrated processes never share entries), and concurrent warm-start
// readers racing a writer (TSan-meaningful: the atomic tmp+rename publish is
// the invariant under test).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/plan_cache.hpp"
#include "models/models.hpp"
#include "obs/calibrate.hpp"
#include "obs/metrics.hpp"
#include "ops/dispatch.hpp"
#include "util/rng.hpp"

namespace brickdl {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test cache directory under the system temp root, removed on
/// destruction. pid + process-local counter keeps parallel ctest shards
/// (and the sanitizer rebuilds) from colliding.
struct TempCacheDir {
  fs::path path;
  TempCacheDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("brickdl_plan_cache_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

Graph test_graph() { return build_conv_chain_2d(3, 1, 16, 2); }

PlanCacheEntry entry_for(const Graph& graph, const EngineOptions& options) {
  PlanCacheEntry entry;
  entry.partition = partition_graph(graph, options.partition);
  entry.calibration = options.partition.calibration;
  return entry;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --------------------------------------------------- Cold/warm engine parity

TEST(PlanCache, EngineColdPopulatesWarmHitsBitIdentical) {
  obs::metrics().reset();
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  eo.plan_cache_dir = dir.str();

  WeightStore weights(7);
  Tensor input(graph.node(0).out_shape);
  Rng rng(11);
  input.fill_random(rng);
  auto run_once = [&] {
    Engine engine(graph, eo);
    NumericBackend backend(graph, weights, 2);
    const EngineResult result = engine.run(backend, &input);
    return backend.read(result.output);
  };

  const Tensor cold = run_once();
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.misses").value(), 1);
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.writes").value(), 1);
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.hits").value(), 0);

  const Tensor warm = run_once();
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.hits").value(), 1);
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.writes").value(), 1);
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.rejects").value(), 0);

  ASSERT_EQ(cold.dims(), warm.dims());
  EXPECT_EQ(std::memcmp(cold.data(), warm.data(),
                        static_cast<size_t>(cold.elements()) * sizeof(float)),
            0)
      << "warm-started output is not bit-identical to cold";
}

// ------------------------------------------------------- Entry round-trip

TEST(PlanCache, StoreLoadRoundTripsPlanAndCalibration) {
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  obs::CalibratedConstants cal =
      obs::CalibratedConstants::stock(eo.partition.machine);
  cal.effective_bandwidth *= 0.5;
  cal.t_atomic *= 2.0;
  cal.wall_scale = 2.25;
  eo.partition.calibration = cal;

  const PlanCacheEntry entry = entry_for(graph, eo);
  PlanCache cache(dir.str());
  const Status stored = cache.store(graph, eo, entry);
  ASSERT_TRUE(stored.ok()) << stored.to_string();

  const PlanCacheLookup lookup = cache.load(graph, eo);
  ASSERT_EQ(lookup.outcome, PlanCacheLookup::Outcome::kHit)
      << lookup.reject_reason.to_string();
  ASSERT_EQ(lookup.entry.partition.subgraphs.size(),
            entry.partition.subgraphs.size());
  for (size_t i = 0; i < entry.partition.subgraphs.size(); ++i) {
    const PlannedSubgraph& want = entry.partition.subgraphs[i];
    const PlannedSubgraph& got = lookup.entry.partition.subgraphs[i];
    EXPECT_EQ(got.sg.nodes, want.sg.nodes);
    EXPECT_EQ(got.sg.external_inputs, want.sg.external_inputs);
    EXPECT_EQ(got.sg.merged, want.sg.merged);
    EXPECT_EQ(got.strategy, want.strategy);
    EXPECT_EQ(got.brick_side, want.brick_side);
    EXPECT_EQ(got.rho, want.rho);            // %.17g: exact round-trip
    EXPECT_EQ(got.delta, want.delta);
    EXPECT_EQ(got.footprint_bytes, want.footprint_bytes);
  }
  ASSERT_TRUE(lookup.entry.calibration.has_value());
  EXPECT_EQ(lookup.entry.calibration->effective_bandwidth,
            cal.effective_bandwidth);
  EXPECT_EQ(lookup.entry.calibration->t_atomic, cal.t_atomic);
  EXPECT_EQ(lookup.entry.calibration->wall_scale, cal.wall_scale);
}

TEST(PlanCache, MissOnEmptyDirectory) {
  TempCacheDir dir;
  const Graph graph = test_graph();
  const PlanCacheLookup lookup = PlanCache(dir.str()).load(graph, {});
  EXPECT_EQ(lookup.outcome, PlanCacheLookup::Outcome::kMiss);
}

// ------------------------------------------------------- Cache poisoning

TEST(PlanCache, TruncatedEntryRejectsAndEngineFallsBackCold) {
  obs::metrics().reset();
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  eo.plan_cache_dir = dir.str();
  PlanCache cache(dir.str());
  ASSERT_TRUE(cache.store(graph, eo, entry_for(graph, eo)).ok());

  const std::string path = cache.entry_path(graph, eo);
  const std::string full = read_text(path);
  ASSERT_GT(full.size(), 40u);
  write_text(path, full.substr(0, full.size() / 2));

  const PlanCacheLookup lookup = cache.load(graph, eo);
  EXPECT_EQ(lookup.outcome, PlanCacheLookup::Outcome::kReject);
  EXPECT_FALSE(lookup.reject_reason.ok());

  // The engine treats the poisoned entry as a counted reject and plans cold
  // — never a crash, never a construction failure.
  Engine engine(graph, eo);
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.rejects").value(), 1);
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.hits").value(), 0);
  // The cold plan overwrites the poison; the next lookup hits again.
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.writes").value(), 1);
  EXPECT_EQ(cache.load(graph, eo).outcome, PlanCacheLookup::Outcome::kHit);
}

TEST(PlanCache, WrongSchemaIsNamedUnknownSchemaReject) {
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  PlanCache cache(dir.str());

  obs::Json doc = PlanCache::entry_to_json(graph, eo, entry_for(graph, eo));
  doc.set("schema", "brickdl-plan-cache-v999");
  write_text(cache.entry_path(graph, eo), doc.dump(1));

  const PlanCacheLookup lookup = cache.load(graph, eo);
  ASSERT_EQ(lookup.outcome, PlanCacheLookup::Outcome::kReject);
  EXPECT_EQ(lookup.reject_reason.code(), StatusCode::kUnknownSchema);
}

TEST(PlanCache, SignatureCollisionWithMismatchedGraphRejects) {
  // Simulate a (hash-collision or copied-file) entry whose embedded plan
  // belongs to a *different* graph landing at this graph's key: the stored
  // signature disagrees with the graph in hand and must reject, not crash
  // and not hand the engine a foreign partition.
  TempCacheDir dir;
  const Graph graph = test_graph();
  const Graph other = build_conv_chain_2d(4, 1, 16, 2);
  EngineOptions eo;
  PlanCache cache(dir.str());

  const obs::Json foreign =
      PlanCache::entry_to_json(other, eo, entry_for(other, eo));
  write_text(cache.entry_path(graph, eo), foreign.dump(1));

  const PlanCacheLookup lookup = cache.load(graph, eo);
  ASSERT_EQ(lookup.outcome, PlanCacheLookup::Outcome::kReject);
  EXPECT_EQ(lookup.reject_reason.code(), StatusCode::kInvalidGraph);
}

TEST(PlanCache, OutOfRangePlanNodesReject) {
  // A structurally impossible plan (node ids beyond the graph) with the
  // *correct* signature line: hand-tampered or version-skewed content.
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  PlanCache cache(dir.str());

  PlanCacheEntry tampered = entry_for(graph, eo);
  ASSERT_FALSE(tampered.partition.subgraphs.empty());
  tampered.partition.subgraphs.back().sg.nodes.back() = 9999;
  const obs::Json doc = PlanCache::entry_to_json(graph, eo, tampered);
  write_text(cache.entry_path(graph, eo), doc.dump(1));

  const PlanCacheLookup lookup = cache.load(graph, eo);
  ASSERT_EQ(lookup.outcome, PlanCacheLookup::Outcome::kReject);
  EXPECT_EQ(lookup.reject_reason.code(), StatusCode::kInvalidGraph);
}

// ------------------------------------------------------------ Key hygiene

TEST(PlanCache, DifferentPlanningOptionsMissRatherThanReject) {
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  PlanCache cache(dir.str());
  ASSERT_TRUE(cache.store(graph, eo, entry_for(graph, eo)).ok());
  ASSERT_EQ(cache.load(graph, eo).outcome, PlanCacheLookup::Outcome::kHit);

  // Any knob the planner reads re-keys the entry: a different configuration
  // is simply a different cache line, not a validation failure.
  EngineOptions other = eo;
  other.force_brick_side = 8;
  EXPECT_NE(cache.entry_path(graph, other), cache.entry_path(graph, eo));
  EXPECT_EQ(cache.load(graph, other).outcome, PlanCacheLookup::Outcome::kMiss);

  EngineOptions budget = eo;
  budget.partition.l2_budget /= 2;
  EXPECT_EQ(cache.load(graph, budget).outcome,
            PlanCacheLookup::Outcome::kMiss);
}

TEST(PlanCache, CalibratedAndStockProcessesNeverShareEntries) {
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions stock_opts;
  PlanCache cache(dir.str());
  ASSERT_TRUE(cache.store(graph, stock_opts, entry_for(graph, stock_opts)).ok());

  EngineOptions calibrated = stock_opts;
  obs::CalibratedConstants cal =
      obs::CalibratedConstants::stock(calibrated.partition.machine);
  cal.effective_bandwidth *= 0.75;
  calibrated.partition.calibration = cal;

  // The fingerprint embeds the *effective* machine, so a calibrated process
  // misses the stock entry (and vice versa) instead of planning with the
  // wrong constants.
  EXPECT_EQ(cache.load(graph, calibrated).outcome,
            PlanCacheLookup::Outcome::kMiss);
  ASSERT_TRUE(cache.store(graph, calibrated, entry_for(graph, calibrated)).ok());
  EXPECT_EQ(cache.load(graph, calibrated).outcome,
            PlanCacheLookup::Outcome::kHit);
  EXPECT_EQ(cache.load(graph, stock_opts).outcome,
            PlanCacheLookup::Outcome::kHit);
}

TEST(PlanCache, IdentityCalibrationStillRekeys) {
  // Even a calibration numerically equal to stock is a distinct planning
  // configuration only if it changes the effective machine — the identity
  // fold must map to the *same* key, proving the fingerprint covers the
  // effective constants rather than the presence of the option.
  const Graph graph = test_graph();
  EngineOptions eo;
  EngineOptions identity = eo;
  identity.partition.calibration =
      obs::CalibratedConstants::stock(eo.partition.machine);
  EXPECT_EQ(plan_options_fingerprint(identity), plan_options_fingerprint(eo));
}

// --------------------------------------------------- Concurrent publication

TEST(PlanCache, ConcurrentWarmReadersRaceOneWriterCleanly) {
  // The atomic tmp+rename publish is the invariant: a reader must only ever
  // observe a complete entry (hit) or no entry (miss) — never a torn file
  // (reject). Run under TSan via the `plan_cache` label.
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  PlanCache cache(dir.str());
  const PlanCacheEntry entry = entry_for(graph, eo);
  ASSERT_TRUE(cache.store(graph, eo, entry).ok());

  std::atomic<int> rejects{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        const PlanCacheLookup lookup = cache.load(graph, eo);
        if (lookup.outcome == PlanCacheLookup::Outcome::kHit) {
          hits.fetch_add(1);
        } else {
          rejects.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 25; ++i) {
      const Status stored = cache.store(graph, eo, entry);
      EXPECT_TRUE(stored.ok()) << stored.to_string();
    }
  });
  for (std::thread& r : readers) r.join();
  writer.join();

  EXPECT_EQ(rejects.load(), 0) << "a reader observed a torn or missing entry";
  EXPECT_EQ(hits.load(), 4 * 40);
  EXPECT_EQ(cache.load(graph, eo).outcome, PlanCacheLookup::Outcome::kHit);
}

TEST(PlanCache, ConcurrentEnginesWarmStartFromOneCache) {
  // Whole-engine version of the race: several engines (one cold, the rest
  // cold-or-warm depending on scheduling) share a cache directory and must
  // all produce bit-identical outputs.
  obs::metrics().reset();
  TempCacheDir dir;
  const Graph graph = test_graph();
  EngineOptions eo;
  eo.plan_cache_dir = dir.str();
  WeightStore weights(7);
  Tensor input(graph.node(0).out_shape);
  Rng rng(11);
  input.fill_random(rng);

  constexpr int kEngines = 4;
  std::vector<Tensor> outputs(kEngines);
  std::vector<std::thread> threads;
  threads.reserve(kEngines);
  for (int t = 0; t < kEngines; ++t) {
    threads.emplace_back([&, t] {
      Engine engine(graph, eo);
      NumericBackend backend(graph, weights, 1);
      const EngineResult result = engine.run(backend, &input);
      outputs[static_cast<size_t>(t)] = backend.read(result.output);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 1; t < kEngines; ++t) {
    ASSERT_EQ(outputs[0].dims(), outputs[static_cast<size_t>(t)].dims());
    EXPECT_EQ(std::memcmp(outputs[0].data(),
                          outputs[static_cast<size_t>(t)].data(),
                          static_cast<size_t>(outputs[0].elements()) *
                              sizeof(float)),
              0)
        << "engine " << t << " output differs";
  }
  // No lookup may have been a reject: every engine either planned cold
  // (miss) or reused a complete published entry (hit).
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.rejects").value(), 0);
  EXPECT_EQ(obs::metrics().counter("engine.plan_cache.hits").value() +
                obs::metrics().counter("engine.plan_cache.misses").value(),
            kEngines);
}

}  // namespace
}  // namespace brickdl
