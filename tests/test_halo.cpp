#include <gtest/gtest.h>

#include "graph/halo.hpp"
#include "graph/graph.hpp"

namespace brickdl {
namespace {

Node conv_node(Dims kernel, Dims stride, Dims padding, Dims dilation,
               bool transposed = false) {
  Graph g;
  const int rank = kernel.rank();
  Dims in_dims{1, 4};
  for (int d = 0; d < rank; ++d) in_dims.push_back(64);
  const int x = g.add_input("x", Shape(in_dims));
  int c;
  if (transposed) {
    c = g.add_deconv(x, "c", kernel, 4, stride, padding, {}, dilation);
  } else {
    c = g.add_conv(x, "c", kernel, 4, stride, padding, dilation);
  }
  return g.node(c);
}

TEST(Halo, ConvUnitStride) {
  const Node n = conv_node(Dims{3, 3}, Dims{1, 1}, Dims{1, 1}, Dims{1, 1});
  // Output window [4, 12) needs input [3, 13): lo*1 - 1, len + 2.
  const Window1D w = input_window(n, 0, {4, 8});
  EXPECT_EQ(w, (Window1D{3, 10}));
  const HaloLaw law = halo_law(n, 0);
  EXPECT_EQ(law.input_extent(8), 10);
}

TEST(Halo, ConvStride2) {
  const Node n = conv_node(Dims{3, 3}, Dims{2, 2}, Dims{1, 1}, Dims{1, 1});
  const Window1D w = input_window(n, 0, {4, 8});
  EXPECT_EQ(w.lo, 4 * 2 - 1);
  EXPECT_EQ(w.len, 7 * 2 + 3);  // (len-1)*s + k
  EXPECT_EQ(halo_law(n, 0).input_extent(8), 17);
}

TEST(Halo, ConvDilated) {
  const Node n = conv_node(Dims{3, 3}, Dims{1, 1}, Dims{2, 2}, Dims{2, 2});
  const Window1D w = input_window(n, 0, {0, 8});
  EXPECT_EQ(w.lo, -2);
  EXPECT_EQ(w.len, 7 + 2 * 2 + 1);  // span = d(k-1)+1 = 5
}

TEST(Halo, ConvKernel1IsPointwise) {
  const Node n = conv_node(Dims{1, 1}, Dims{1, 1}, Dims{0, 0}, Dims{1, 1});
  EXPECT_EQ(input_window(n, 0, {5, 9}), (Window1D{5, 9}));
  EXPECT_EQ(padding_factor(n, 0), 0);
}

TEST(Halo, TransposedConvCoversContributors) {
  const Node n =
      conv_node(Dims{4, 4}, Dims{2, 2}, Dims{1, 1}, Dims{1, 1}, true);
  // Every input index i contributes to outputs o = 2i - 1 + t, t in [0,4).
  // For an output window, the computed input window must contain every
  // contributing i (checked exhaustively).
  for (i64 lo = 0; lo < 6; ++lo) {
    for (i64 len = 1; len <= 6; ++len) {
      const Window1D w = input_window(n, 0, {lo, len});
      for (i64 i = -4; i < 12; ++i) {
        bool contributes = false;
        for (i64 t = 0; t < 4; ++t) {
          const i64 o = i * 2 - 1 + t;
          if (o >= lo && o < lo + len) contributes = true;
        }
        if (contributes) {
          EXPECT_GE(i, w.lo) << "lo=" << lo << " len=" << len << " i=" << i;
          EXPECT_LT(i, w.lo + w.len) << "lo=" << lo << " len=" << len;
        }
      }
    }
  }
}

TEST(Halo, PoolWindow) {
  Graph g;
  const int x = g.add_input("x", Shape{1, 4, 32, 32});
  const int p = g.add_pool(x, "p", PoolKind::kMax, Dims{3, 3}, Dims{2, 2},
                           Dims{1, 1});
  const Node& n = g.node(p);
  const Window1D w = input_window(n, 0, {2, 4});
  EXPECT_EQ(w.lo, 2 * 2 - 1);
  EXPECT_EQ(w.len, 3 * 2 + 3);
  EXPECT_EQ(padding_factor(n, 0), 1);  // window - stride
}

TEST(Halo, PointwiseOpsIdentity) {
  Graph g;
  const int x = g.add_input("x", Shape{1, 4, 16, 16});
  const int r = g.add_relu(x, "r");
  const int s = g.add_sigmoid(r, "s");
  const int b = g.add_batchnorm(s, "b");
  for (int id : {r, s, b}) {
    const Node& n = g.node(id);
    EXPECT_EQ(input_window(n, 0, {3, 5}), (Window1D{3, 5}));
    EXPECT_EQ(padding_factor(n, 0), 0);
    EXPECT_EQ(halo_law(n, 0).input_extent(5), 5);
  }
}

TEST(Halo, PaddingFactorMatchesPaperFormula) {
  // §3.2.1: p = (X-1)/2 for an X-kernel conv.
  const Node n3 = conv_node(Dims{3, 3}, Dims{1, 1}, Dims{1, 1}, Dims{1, 1});
  EXPECT_EQ(padding_factor(n3, 0), 1);
  const Node n5 = conv_node(Dims{5, 5}, Dims{1, 1}, Dims{2, 2}, Dims{1, 1});
  EXPECT_EQ(padding_factor(n5, 0), 2);
  const Node n7 = conv_node(Dims{7, 7}, Dims{1, 1}, Dims{3, 3}, Dims{1, 1});
  EXPECT_EQ(padding_factor(n7, 0), 3);
  // Dilated: effective kernel span grows.
  const Node nd = conv_node(Dims{3, 3}, Dims{1, 1}, Dims{2, 2}, Dims{2, 2});
  EXPECT_EQ(padding_factor(nd, 0), 2);
}

TEST(Halo, BlockedWindowKeepsBatchIdentity) {
  const Node n = conv_node(Dims{3, 3}, Dims{1, 1}, Dims{1, 1}, Dims{1, 1});
  Dims in_lo, in_extent;
  input_window_blocked(n, Dims{2, 4, 8}, Dims{1, 8, 8}, &in_lo, &in_extent);
  EXPECT_EQ(in_lo, (Dims{2, 3, 7}));
  EXPECT_EQ(in_extent, (Dims{1, 10, 10}));
}

TEST(Halo, AffineLawMatchesWindowExhaustively) {
  // Property: halo_law().input_extent must bound input_window().len for a
  // range of window sizes, for several op configurations.
  struct Case {
    Dims kernel, stride, padding, dilation;
  };
  const Case cases[] = {
      {Dims{3, 3}, Dims{1, 1}, Dims{1, 1}, Dims{1, 1}},
      {Dims{5, 5}, Dims{2, 2}, Dims{2, 2}, Dims{1, 1}},
      {Dims{3, 3}, Dims{1, 1}, Dims{4, 4}, Dims{4, 4}},
      {Dims{7, 7}, Dims{3, 3}, Dims{3, 3}, Dims{1, 1}},
  };
  for (const Case& c : cases) {
    const Node n = conv_node(c.kernel, c.stride, c.padding, c.dilation);
    const HaloLaw law = halo_law(n, 0);
    for (i64 len = 1; len <= 16; ++len) {
      EXPECT_EQ(law.input_extent(len), input_window(n, 0, {0, len}).len);
    }
  }
}

}  // namespace
}  // namespace brickdl
