#include <gtest/gtest.h>

#include <algorithm>

#include "sim/cost.hpp"

namespace brickdl {
namespace {

MachineParams tiny_machine() {
  MachineParams p;
  p.line_bytes = 32;
  p.l1_bytes = 4 * 32;  // 4 lines, 1 set x 4 ways
  p.l1_ways = 4;
  p.l2_bytes = 16 * 32;  // 16 lines
  p.l2_ways = 4;
  p.concurrent_blocks = 2;
  return p;
}

TEST(CacheModel, HitAfterFill) {
  CacheModel cache(4 * 32, 4, 32);
  EXPECT_FALSE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
}

TEST(CacheModel, LruEviction) {
  CacheModel cache(2 * 32, 2, 32);  // one set, two ways
  cache.access(0, false);
  cache.access(1, false);
  cache.access(0, false);  // 0 is now MRU
  cache.access(2, false);  // evicts 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(CacheModel, DirtyEvictionReported) {
  CacheModel cache(2 * 32, 2, 32);
  cache.access(0, true);   // dirty
  cache.access(1, false);
  const auto r = cache.access(2, false);  // evicts 0 (LRU, dirty)
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_line, 0u);
}

TEST(CacheModel, FlushCollectsDirty) {
  CacheModel cache(4 * 32, 4, 32);
  cache.access(0, true);
  cache.access(1, false);
  cache.access(2, true);
  std::vector<u64> dirty;
  EXPECT_EQ(cache.flush(&dirty), 2);
  std::sort(dirty.begin(), dirty.end());
  EXPECT_EQ(dirty, (std::vector<u64>{0, 2}));
  EXPECT_FALSE(cache.contains(0));
}

TEST(CacheModel, Invalidate) {
  CacheModel cache(4 * 32, 4, 32);
  cache.access(5, true);
  cache.invalidate(5);
  EXPECT_FALSE(cache.contains(5));
  std::vector<u64> dirty;
  EXPECT_EQ(cache.flush(&dirty), 0);  // dirty bit dropped with the line
}

// The incremental split cache (DESIGN.md §14: probe fast path for the
// emitters' sequential runs) is a pure strength reduction: for any access
// stream — sequential runs, strided hops, random jumps, wraparounds — every
// AccessResult and the final dirty set must match the pure fastmod
// derivation bit for bit.
TEST(CacheModel, SplitCacheBitIdenticalToFastmod) {
  for (const auto& [capacity_lines, ways] :
       {std::pair<i64, int>{16, 4}, {64, 16}, {8, 2}}) {
    CacheModel fast(capacity_lines * 32, ways, 32);
    CacheModel slow(capacity_lines * 32, ways, 32);
    slow.set_split_cache_enabled(false);

    // Mixed stream: sequential runs (the fast path), a stride, a set-index
    // wraparound (line resets below the previous one), and seeded jumps.
    std::vector<u64> stream;
    for (u64 l = 7; l < 7 + 40; ++l) stream.push_back(l);          // run
    for (u64 l = 0; l < 16; ++l) stream.push_back(3 + l * 17);     // stride
    for (u64 l = 2; l < 2 + 12; ++l) stream.push_back(l);          // wrap
    u64 x = 0x9e3779b9;
    for (int i = 0; i < 200; ++i) {                                // jumps
      x = x * 2862933555777941757ull + 3037000493ull;
      stream.push_back(x % 4096);
      // Interleave short sequential bursts so the cache re-arms mid-stream.
      if (i % 7 == 0) {
        stream.push_back(stream.back() + 1);
        stream.push_back(stream.back() + 1);
      }
    }

    for (size_t i = 0; i < stream.size(); ++i) {
      const bool write = (i % 3) == 0;
      const auto a = fast.access(stream[i], write);
      const auto b = slow.access(stream[i], write);
      ASSERT_EQ(a.hit, b.hit) << "i=" << i << " line=" << stream[i];
      ASSERT_EQ(a.evicted_dirty, b.evicted_dirty) << "i=" << i;
      if (a.evicted_dirty) ASSERT_EQ(a.evicted_line, b.evicted_line);
    }
    std::vector<u64> dirty_fast, dirty_slow;
    EXPECT_EQ(fast.flush(&dirty_fast), slow.flush(&dirty_slow));
    std::sort(dirty_fast.begin(), dirty_fast.end());
    std::sort(dirty_slow.begin(), dirty_slow.end());
    EXPECT_EQ(dirty_fast, dirty_slow);
  }
}

TEST(MemSim, CountsHierarchy) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 base = sim.allocate("t", 1024);
  sim.invocation_begin(0);
  sim.access(0, base, 64, false);  // 2 lines: both L1 miss -> L2 miss -> DRAM
  TxnCounters c = sim.counters();
  EXPECT_EQ(c.l1, 2);
  EXPECT_EQ(c.l2, 2);
  EXPECT_EQ(c.dram_read, 2);

  sim.access(0, base, 64, false);  // L1 hits
  c = sim.counters();
  EXPECT_EQ(c.l1, 4);
  EXPECT_EQ(c.l2, 2);
  EXPECT_EQ(c.dram_read, 2);
}

TEST(MemSim, InvocationResetsL1ButNotL2) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 base = sim.allocate("t", 1024);
  sim.invocation_begin(0);
  sim.access(0, base, 32, false);
  sim.invocation_begin(0);  // L1 cold again
  sim.access(0, base, 32, false);
  const TxnCounters c = sim.counters();
  EXPECT_EQ(c.l1, 2);
  EXPECT_EQ(c.l2, 2);       // second access misses L1, hits L2
  EXPECT_EQ(c.dram_read, 1);  // only the first reached DRAM
}

TEST(MemSim, DirtyL1WritebackOnInvocationEnd) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 base = sim.allocate("t", 1024);
  sim.invocation_begin(0);
  sim.access(0, base, 32, true);  // write: L1 dirty
  const i64 l2_before = sim.counters().l2;
  sim.invocation_begin(0);  // flush L1 -> one L2 write
  EXPECT_EQ(sim.counters().l2, l2_before + 1);
}

TEST(MemSim, WorkersHavePrivateL1s) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 base = sim.allocate("t", 1024);
  sim.access(0, base, 32, false);
  sim.access(1, base, 32, false);  // worker 1 L1 cold, but L2 warm
  const TxnCounters c = sim.counters();
  EXPECT_EQ(c.l1, 2);
  EXPECT_EQ(c.l2, 2);
  EXPECT_EQ(c.dram_read, 1);
}

TEST(MemSim, FlushWritesBackDirtyL2) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 base = sim.allocate("t", 1024);
  sim.access(0, base, 32, true);
  EXPECT_EQ(sim.counters().dram_write, 0);
  sim.flush();
  EXPECT_EQ(sim.counters().dram_write, 1);
}

TEST(MemSim, DiscardDropsDirtyWithoutWriteback) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 base = sim.allocate("t", 1024);
  sim.access(0, base, 32, true);
  sim.discard(base, 32);
  sim.flush();
  EXPECT_EQ(sim.counters().dram_write, 0);
}

TEST(MemSim, CapacityEvictionReachesDram) {
  MachineParams p = tiny_machine();
  MemoryHierarchySim sim(p);
  const u64 base = sim.allocate("big", 64 * 32);
  // Stream through 64 lines with full-line writes: L2 holds 16, so most
  // dirty lines get evicted and written back. Full-line writes validate in
  // place — no DRAM read fills.
  for (int i = 0; i < 64; ++i) {
    sim.access(0, base + static_cast<u64>(i) * 32, 32, true);
  }
  const TxnCounters c = sim.counters();
  EXPECT_EQ(c.dram_read, 0);
  EXPECT_GE(c.dram_write, 64 - 16 - 4);  // all but what L1+L2 can hold
}

TEST(MemSim, PartialWritesFetchTheLine) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 base = sim.allocate("t", 1024);
  sim.access(0, base, 8, true);  // 8 of 32 bytes: read-modify-write fill
  EXPECT_EQ(sim.counters().dram_read, 1);
  sim.reset_counters();
  sim.invocation_begin(1);
  sim.access(1, base + 64, 32, true);  // exactly one full line: no fill
  EXPECT_EQ(sim.counters().dram_read, 0);
  // Misaligned 32-byte write spans two lines, covering neither fully... it
  // covers bytes [8, 40): line 0 partially, line 1 partially.
  sim.reset_counters();
  sim.access(0, base + 128 + 8, 32, true);
  EXPECT_EQ(sim.counters().dram_read, 2);
}

TEST(MemSim, AtomicsCounted) {
  MemoryHierarchySim sim(tiny_machine());
  sim.count_atomics(10, 3);
  sim.count_atomics(2, 1);
  const TxnCounters c = sim.counters();
  EXPECT_EQ(c.atomics_compulsory, 12);
  EXPECT_EQ(c.atomics_conflict, 4);
  EXPECT_EQ(c.atomics(), 16);
}

TEST(MemSim, AllocationsDisjoint) {
  MemoryHierarchySim sim(tiny_machine());
  const u64 a = sim.allocate("a", 100);
  const u64 b = sim.allocate("b", 100);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(a % 32, 0u);
  EXPECT_EQ(b % 32, 0u);
}

TEST(CostModel, PaperConstants) {
  const MachineParams a100 = MachineParams::a100();
  const CostModel cost(a100);
  // R_txn = 1.5 TB/s / 32 B = 46.875 G txn/s.
  EXPECT_NEAR(a100.txn_rate(), 46.875e9, 1e6);
  // T_atomic = 87.45 ns.
  EXPECT_NEAR(cost.atomic_time(1), 87.45e-9, 1e-12);
  // T_brick for the §4.3.2 reference: 8^3 brick, 3^3 filter, 64->64 channels.
  const double flops = 512.0 * 64 * 64 * 27 * 2;
  EXPECT_NEAR(cost.t_brick(flops), 6.72e-6, 0.15e-6);
}

TEST(CostModel, BreakdownPerfectOverlap) {
  const CostModel cost(MachineParams::a100());
  TxnCounters txns;
  txns.dram_read = 1000000;
  ComputeTally tally;
  tally.invocations = 10;
  tally.flops = 1e9;

  const Breakdown b = cost.breakdown(txns, tally);
  EXPECT_NEAR(b.memory_side(), b.compute_side(), 1e-12);
  EXPECT_GT(b.dram, 0.0);
  EXPECT_GT(b.compute, 0.0);
  // Memory-bound case: compute side is shorter, idle absorbs nothing and
  // the compute side gets no idle segment (idle only pads memory side).
  TxnCounters heavy = txns;
  heavy.dram_read = 100000000;
  const Breakdown b2 = cost.breakdown(heavy, tally);
  EXPECT_EQ(b2.idle, 0.0);
  EXPECT_GT(b2.total(), b.total());
}

TEST(CostModel, AtomicsEnterComputeSide) {
  const CostModel cost(MachineParams::a100());
  TxnCounters txns;
  txns.atomics_compulsory = 1000;
  txns.atomics_conflict = 500;
  const Breakdown b = cost.breakdown(txns, ComputeTally{});
  EXPECT_NEAR(b.atomics_compulsory, 1000 * 87.45e-9, 1e-9);
  EXPECT_NEAR(b.atomics_conflict, 500 * 87.45e-9, 1e-9);
  EXPECT_NEAR(b.total(), b.compute_side(), 1e-15);
}

}  // namespace
}  // namespace brickdl
