
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fused_graph.cpp" "src/CMakeFiles/brickdl.dir/baselines/fused_graph.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/baselines/fused_graph.cpp.o.d"
  "/root/repo/src/baselines/vendor_tiled.cpp" "src/CMakeFiles/brickdl.dir/baselines/vendor_tiled.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/baselines/vendor_tiled.cpp.o.d"
  "/root/repo/src/brick/brick_grid.cpp" "src/CMakeFiles/brickdl.dir/brick/brick_grid.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/brick/brick_grid.cpp.o.d"
  "/root/repo/src/brick/brick_info.cpp" "src/CMakeFiles/brickdl.dir/brick/brick_info.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/brick/brick_info.cpp.o.d"
  "/root/repo/src/brick/brick_map.cpp" "src/CMakeFiles/brickdl.dir/brick/brick_map.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/brick/brick_map.cpp.o.d"
  "/root/repo/src/brick/bricked_tensor.cpp" "src/CMakeFiles/brickdl.dir/brick/bricked_tensor.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/brick/bricked_tensor.cpp.o.d"
  "/root/repo/src/core/autotuner.cpp" "src/CMakeFiles/brickdl.dir/core/autotuner.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/autotuner.cpp.o.d"
  "/root/repo/src/core/backend.cpp" "src/CMakeFiles/brickdl.dir/core/backend.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/backend.cpp.o.d"
  "/root/repo/src/core/brick_size_model.cpp" "src/CMakeFiles/brickdl.dir/core/brick_size_model.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/brick_size_model.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/brickdl.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/halo_plan.cpp" "src/CMakeFiles/brickdl.dir/core/halo_plan.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/halo_plan.cpp.o.d"
  "/root/repo/src/core/memoized_executor.cpp" "src/CMakeFiles/brickdl.dir/core/memoized_executor.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/memoized_executor.cpp.o.d"
  "/root/repo/src/core/model_backend.cpp" "src/CMakeFiles/brickdl.dir/core/model_backend.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/model_backend.cpp.o.d"
  "/root/repo/src/core/padded_executor.cpp" "src/CMakeFiles/brickdl.dir/core/padded_executor.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/padded_executor.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/CMakeFiles/brickdl.dir/core/partitioner.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/partitioner.cpp.o.d"
  "/root/repo/src/core/wavefront_executor.cpp" "src/CMakeFiles/brickdl.dir/core/wavefront_executor.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/core/wavefront_executor.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/brickdl.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/brickdl.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/halo.cpp" "src/CMakeFiles/brickdl.dir/graph/halo.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/graph/halo.cpp.o.d"
  "/root/repo/src/graph/op.cpp" "src/CMakeFiles/brickdl.dir/graph/op.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/graph/op.cpp.o.d"
  "/root/repo/src/graph/rewrite.cpp" "src/CMakeFiles/brickdl.dir/graph/rewrite.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/graph/rewrite.cpp.o.d"
  "/root/repo/src/graph/serialize.cpp" "src/CMakeFiles/brickdl.dir/graph/serialize.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/graph/serialize.cpp.o.d"
  "/root/repo/src/graph/shape_inference.cpp" "src/CMakeFiles/brickdl.dir/graph/shape_inference.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/graph/shape_inference.cpp.o.d"
  "/root/repo/src/models/darknet53.cpp" "src/CMakeFiles/brickdl.dir/models/darknet53.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/darknet53.cpp.o.d"
  "/root/repo/src/models/deepcam.cpp" "src/CMakeFiles/brickdl.dir/models/deepcam.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/deepcam.cpp.o.d"
  "/root/repo/src/models/drn26.cpp" "src/CMakeFiles/brickdl.dir/models/drn26.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/drn26.cpp.o.d"
  "/root/repo/src/models/inception_v4.cpp" "src/CMakeFiles/brickdl.dir/models/inception_v4.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/inception_v4.cpp.o.d"
  "/root/repo/src/models/proxy_chains.cpp" "src/CMakeFiles/brickdl.dir/models/proxy_chains.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/proxy_chains.cpp.o.d"
  "/root/repo/src/models/resnet34_3d.cpp" "src/CMakeFiles/brickdl.dir/models/resnet34_3d.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/resnet34_3d.cpp.o.d"
  "/root/repo/src/models/resnet50.cpp" "src/CMakeFiles/brickdl.dir/models/resnet50.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/resnet50.cpp.o.d"
  "/root/repo/src/models/vgg16.cpp" "src/CMakeFiles/brickdl.dir/models/vgg16.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/models/vgg16.cpp.o.d"
  "/root/repo/src/ops/conv.cpp" "src/CMakeFiles/brickdl.dir/ops/conv.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/ops/conv.cpp.o.d"
  "/root/repo/src/ops/dense.cpp" "src/CMakeFiles/brickdl.dir/ops/dense.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/ops/dense.cpp.o.d"
  "/root/repo/src/ops/dispatch.cpp" "src/CMakeFiles/brickdl.dir/ops/dispatch.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/ops/dispatch.cpp.o.d"
  "/root/repo/src/ops/elementwise.cpp" "src/CMakeFiles/brickdl.dir/ops/elementwise.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/ops/elementwise.cpp.o.d"
  "/root/repo/src/ops/normalize.cpp" "src/CMakeFiles/brickdl.dir/ops/normalize.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/ops/normalize.cpp.o.d"
  "/root/repo/src/ops/pool.cpp" "src/CMakeFiles/brickdl.dir/ops/pool.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/ops/pool.cpp.o.d"
  "/root/repo/src/ops/weights_io.cpp" "src/CMakeFiles/brickdl.dir/ops/weights_io.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/ops/weights_io.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/brickdl.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cost.cpp" "src/CMakeFiles/brickdl.dir/sim/cost.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/sim/cost.cpp.o.d"
  "/root/repo/src/sim/memsim.cpp" "src/CMakeFiles/brickdl.dir/sim/memsim.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/sim/memsim.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/brickdl.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/brickdl.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/brickdl.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/brickdl.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/brickdl.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
