# Empty dependencies file for brickdl.
# This may be replaced when dependencies are built.
