file(REMOVE_RECURSE
  "libbrickdl.a"
)
