# Empty dependencies file for brickdl_cli.
# This may be replaced when dependencies are built.
