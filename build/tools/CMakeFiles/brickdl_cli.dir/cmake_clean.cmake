file(REMOVE_RECURSE
  "CMakeFiles/brickdl_cli.dir/brickdl_cli.cpp.o"
  "CMakeFiles/brickdl_cli.dir/brickdl_cli.cpp.o.d"
  "brickdl_cli"
  "brickdl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brickdl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
