# Empty dependencies file for graph_partition_explorer.
# This may be replaced when dependencies are built.
