file(REMOVE_RECURSE
  "CMakeFiles/graph_partition_explorer.dir/graph_partition_explorer.cpp.o"
  "CMakeFiles/graph_partition_explorer.dir/graph_partition_explorer.cpp.o.d"
  "graph_partition_explorer"
  "graph_partition_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_partition_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
