file(REMOVE_RECURSE
  "CMakeFiles/resnet_block_inference.dir/resnet_block_inference.cpp.o"
  "CMakeFiles/resnet_block_inference.dir/resnet_block_inference.cpp.o.d"
  "resnet_block_inference"
  "resnet_block_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_block_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
