file(REMOVE_RECURSE
  "CMakeFiles/brick_layout_tour.dir/brick_layout_tour.cpp.o"
  "CMakeFiles/brick_layout_tour.dir/brick_layout_tour.cpp.o.d"
  "brick_layout_tour"
  "brick_layout_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brick_layout_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
