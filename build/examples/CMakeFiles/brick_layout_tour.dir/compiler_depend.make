# Empty compiler generated dependencies file for brick_layout_tour.
# This may be replaced when dependencies are built.
