file(REMOVE_RECURSE
  "CMakeFiles/fig10_subgraph_size.dir/fig10_subgraph_size.cpp.o"
  "CMakeFiles/fig10_subgraph_size.dir/fig10_subgraph_size.cpp.o.d"
  "fig10_subgraph_size"
  "fig10_subgraph_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_subgraph_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
