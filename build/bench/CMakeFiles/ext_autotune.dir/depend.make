# Empty dependencies file for ext_autotune.
# This may be replaced when dependencies are built.
