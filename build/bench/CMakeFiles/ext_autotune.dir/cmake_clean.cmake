file(REMOVE_RECURSE
  "CMakeFiles/ext_autotune.dir/ext_autotune.cpp.o"
  "CMakeFiles/ext_autotune.dir/ext_autotune.cpp.o.d"
  "ext_autotune"
  "ext_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
