# Empty compiler generated dependencies file for cal_atomics.
# This may be replaced when dependencies are built.
