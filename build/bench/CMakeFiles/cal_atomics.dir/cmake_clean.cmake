file(REMOVE_RECURSE
  "CMakeFiles/cal_atomics.dir/cal_atomics.cpp.o"
  "CMakeFiles/cal_atomics.dir/cal_atomics.cpp.o.d"
  "cal_atomics"
  "cal_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cal_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
