file(REMOVE_RECURSE
  "CMakeFiles/fig08_resnet50_subgraphs.dir/fig08_resnet50_subgraphs.cpp.o"
  "CMakeFiles/fig08_resnet50_subgraphs.dir/fig08_resnet50_subgraphs.cpp.o.d"
  "fig08_resnet50_subgraphs"
  "fig08_resnet50_subgraphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_resnet50_subgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
