# Empty compiler generated dependencies file for fig08_resnet50_subgraphs.
# This may be replaced when dependencies are built.
