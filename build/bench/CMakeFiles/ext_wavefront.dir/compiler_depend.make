# Empty compiler generated dependencies file for ext_wavefront.
# This may be replaced when dependencies are built.
