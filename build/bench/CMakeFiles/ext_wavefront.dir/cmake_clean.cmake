file(REMOVE_RECURSE
  "CMakeFiles/ext_wavefront.dir/ext_wavefront.cpp.o"
  "CMakeFiles/ext_wavefront.dir/ext_wavefront.cpp.o.d"
  "ext_wavefront"
  "ext_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
