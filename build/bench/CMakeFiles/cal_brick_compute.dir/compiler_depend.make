# Empty compiler generated dependencies file for cal_brick_compute.
# This may be replaced when dependencies are built.
