file(REMOVE_RECURSE
  "CMakeFiles/cal_brick_compute.dir/cal_brick_compute.cpp.o"
  "CMakeFiles/cal_brick_compute.dir/cal_brick_compute.cpp.o.d"
  "cal_brick_compute"
  "cal_brick_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cal_brick_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
