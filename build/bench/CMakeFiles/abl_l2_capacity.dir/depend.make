# Empty dependencies file for abl_l2_capacity.
# This may be replaced when dependencies are built.
