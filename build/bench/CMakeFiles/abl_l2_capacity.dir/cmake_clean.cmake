file(REMOVE_RECURSE
  "CMakeFiles/abl_l2_capacity.dir/abl_l2_capacity.cpp.o"
  "CMakeFiles/abl_l2_capacity.dir/abl_l2_capacity.cpp.o.d"
  "abl_l2_capacity"
  "abl_l2_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_l2_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
