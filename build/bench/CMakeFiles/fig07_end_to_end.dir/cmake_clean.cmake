file(REMOVE_RECURSE
  "CMakeFiles/fig07_end_to_end.dir/fig07_end_to_end.cpp.o"
  "CMakeFiles/fig07_end_to_end.dir/fig07_end_to_end.cpp.o.d"
  "fig07_end_to_end"
  "fig07_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
