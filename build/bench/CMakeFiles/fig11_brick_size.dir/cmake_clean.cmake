file(REMOVE_RECURSE
  "CMakeFiles/fig11_brick_size.dir/fig11_brick_size.cpp.o"
  "CMakeFiles/fig11_brick_size.dir/fig11_brick_size.cpp.o.d"
  "fig11_brick_size"
  "fig11_brick_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_brick_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
