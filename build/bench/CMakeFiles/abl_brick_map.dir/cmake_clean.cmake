file(REMOVE_RECURSE
  "CMakeFiles/abl_brick_map.dir/abl_brick_map.cpp.o"
  "CMakeFiles/abl_brick_map.dir/abl_brick_map.cpp.o.d"
  "abl_brick_map"
  "abl_brick_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_brick_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
