# Empty compiler generated dependencies file for abl_brick_map.
# This may be replaced when dependencies are built.
