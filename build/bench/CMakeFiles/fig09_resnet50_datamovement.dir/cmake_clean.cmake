file(REMOVE_RECURSE
  "CMakeFiles/fig09_resnet50_datamovement.dir/fig09_resnet50_datamovement.cpp.o"
  "CMakeFiles/fig09_resnet50_datamovement.dir/fig09_resnet50_datamovement.cpp.o.d"
  "fig09_resnet50_datamovement"
  "fig09_resnet50_datamovement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_resnet50_datamovement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
