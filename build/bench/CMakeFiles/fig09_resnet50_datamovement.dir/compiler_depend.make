# Empty compiler generated dependencies file for fig09_resnet50_datamovement.
# This may be replaced when dependencies are built.
