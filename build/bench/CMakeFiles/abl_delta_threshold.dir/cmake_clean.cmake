file(REMOVE_RECURSE
  "CMakeFiles/abl_delta_threshold.dir/abl_delta_threshold.cpp.o"
  "CMakeFiles/abl_delta_threshold.dir/abl_delta_threshold.cpp.o.d"
  "abl_delta_threshold"
  "abl_delta_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_delta_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
