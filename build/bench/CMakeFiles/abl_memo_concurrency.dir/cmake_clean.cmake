file(REMOVE_RECURSE
  "CMakeFiles/abl_memo_concurrency.dir/abl_memo_concurrency.cpp.o"
  "CMakeFiles/abl_memo_concurrency.dir/abl_memo_concurrency.cpp.o.d"
  "abl_memo_concurrency"
  "abl_memo_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memo_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
