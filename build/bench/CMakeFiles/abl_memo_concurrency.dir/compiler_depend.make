# Empty compiler generated dependencies file for abl_memo_concurrency.
# This may be replaced when dependencies are built.
