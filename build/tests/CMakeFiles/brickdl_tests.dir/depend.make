# Empty dependencies file for brickdl_tests.
# This may be replaced when dependencies are built.
