
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autotuner.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_autotuner.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_autotuner.cpp.o.d"
  "/root/repo/tests/test_backend.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_backend.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_backend.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_brick_layout.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_brick_layout.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_brick_layout.cpp.o.d"
  "/root/repo/tests/test_brick_map_policies.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_brick_map_policies.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_brick_map_policies.cpp.o.d"
  "/root/repo/tests/test_brick_size_model.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_brick_size_model.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_brick_size_model.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_halo.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_halo.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_halo.cpp.o.d"
  "/root/repo/tests/test_halo_plan.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_halo_plan.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_halo_plan.cpp.o.d"
  "/root/repo/tests/test_integration_sweeps.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_integration_sweeps.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_integration_sweeps.cpp.o.d"
  "/root/repo/tests/test_memoized_executor.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_memoized_executor.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_memoized_executor.cpp.o.d"
  "/root/repo/tests/test_memsim_properties.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_memsim_properties.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_memsim_properties.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_ops.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_ops.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_ops.cpp.o.d"
  "/root/repo/tests/test_padded_executor.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_padded_executor.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_padded_executor.cpp.o.d"
  "/root/repo/tests/test_partitioner.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_partitioner.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_partitioner.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_rewrite.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_rewrite.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_rewrite.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_shape.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_shape.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_shape.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_wavefront_executor.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_wavefront_executor.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_wavefront_executor.cpp.o.d"
  "/root/repo/tests/test_weights_io.cpp" "tests/CMakeFiles/brickdl_tests.dir/test_weights_io.cpp.o" "gcc" "tests/CMakeFiles/brickdl_tests.dir/test_weights_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/brickdl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
