// brickdl_cli — inspect and model any zoo network from the command line.
//
//   brickdl_cli <model> [options]
//
//   models:  resnet50 | drn26 | resnet34_3d | darknet53 | vgg16 | deepcam
//            | inception_v4 | @<path>  (load a serialized graph file,
//                                       see graph/serialize.hpp)
//   options:
//     --batch N        batch size                (default 8)
//     --spatial N      input resolution per dim  (default 224; 3D models cube it)
//     --width-div N    divide channel widths     (default 1)
//     --system S       cudnn | torchscript | xla | brickdl | all  (default all)
//     --partition-strategy S   paper | greedy — BrickDL graph partitioner
//                      (default paper; see DESIGN.md §11). Unknown names are
//                      rejected up front by validate_engine_options.
//     --partition      print the partition plan and exit
//     --dot            print the graph as Graphviz and exit
//     --no-fuse        skip the conv+pointwise rewrite for BrickDL
//     --trace[=PATH]   profiled BrickDL run; write a Chrome/Perfetto trace
//                      (default trace.json; open at https://ui.perfetto.dev)
//     --report[=PATH]  profiled BrickDL run; write the predicted-vs-observed
//                      run report JSON (default report.json) and print the
//                      comparison table
//
// Performance numbers come from the simulated A100 (see DESIGN.md §2).
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/fused_graph.hpp"
#include "core/engine.hpp"
#include "graph/rewrite.hpp"
#include "graph/serialize.hpp"
#include "models/models.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

using namespace brickdl;

namespace {

struct Options {
  std::string model;
  ModelConfig config;
  std::string system = "all";
  std::string partition_strategy = "paper";
  bool partition_only = false;
  bool dot = false;
  bool fuse = true;
  std::string trace_path;   ///< --trace: Chrome-trace output (empty = off)
  std::string report_path;  ///< --report: run-report JSON output (empty = off)
};

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

ModelBuilder find_builder(const std::string& name) {
  const struct {
    const char* key;
    ModelBuilder builder;
  } table[] = {{"resnet50", &build_resnet50},
               {"drn26", &build_drn26},
               {"resnet34_3d", &build_resnet34_3d},
               {"darknet53", &build_darknet53},
               {"vgg16", &build_vgg16},
               {"deepcam", &build_deepcam},
               {"inception_v4", &build_inception_v4}};
  for (const auto& entry : table) {
    if (name == entry.key) return entry.builder;
  }
  return nullptr;
}

int usage() {
  std::fprintf(stderr,
               "usage: brickdl_cli <model> [--batch N] [--spatial N] "
               "[--width-div N]\n"
               "                   [--system cudnn|torchscript|xla|brickdl|all]"
               " [--partition] [--dot] [--no-fuse]\n"
               "                   [--partition-strategy paper|greedy]\n"
               "                   [--trace[=t.json]] [--report[=r.json]]\n"
               "models: resnet50 drn26 resnet34_3d darknet53 vgg16 deepcam "
               "inception_v4\n");
  return 2;
}

struct Modeled {
  double dram_ms = 0.0;
  double compute_ms = 0.0;
  double total_ms = 0.0;
  i64 dram_txns = 0;
};

Modeled run_system(const Graph& graph, const std::string& system,
                   const std::string& partition_strategy) {
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(graph, sim);
  if (system == "brickdl") {
    EngineOptions eopts;
    eopts.partition.strategy = partition_strategy;
    Engine engine(graph, eopts);
    engine.run(backend);
  } else {
    const FusionRules rules = system == "torchscript"
                                  ? FusionRules::kConvPointwise
                              : system == "xla" ? FusionRules::kAggressive
                                                : FusionRules::kNone;
    FusedGraphExecutor exec(graph, backend, rules, 32);
    exec.run();
    sim.flush();
  }
  const CostModel cost(sim.params());
  const Breakdown b = cost.breakdown(sim.counters(), backend.tally());
  Modeled m;
  m.dram_ms = b.dram * 1e3;
  m.compute_ms = b.compute_side() * 1e3;
  m.total_ms = (b.dram + b.compute_side()) * 1e3;
  m.dram_txns = sim.counters().dram();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Options opts;
  opts.model = argv[1];
  opts.config.batch = 8;
  opts.config.spatial = 224;
  opts.config.width_div = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--batch") {
      opts.config.batch = std::atol(next());
    } else if (arg == "--spatial") {
      opts.config.spatial = std::atol(next());
    } else if (arg == "--width-div") {
      opts.config.width_div = std::atol(next());
    } else if (arg == "--system") {
      opts.system = next();
    } else if (arg == "--partition-strategy") {
      const char* value = next();
      if (!value) return usage();
      opts.partition_strategy = value;
    } else if (arg == "--partition") {
      opts.partition_only = true;
    } else if (arg == "--dot") {
      opts.dot = true;
    } else if (arg == "--no-fuse") {
      opts.fuse = false;
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      opts.trace_path =
          arg.size() > 8 ? arg.substr(8) : std::string("trace.json");
    } else if (arg == "--report" || arg.rfind("--report=", 0) == 0) {
      opts.report_path =
          arg.size() > 9 ? arg.substr(9) : std::string("report.json");
    } else {
      return usage();
    }
  }

  Graph graph("empty");
  if (!opts.model.empty() && opts.model[0] == '@') {
    std::FILE* f = std::fopen(opts.model.c_str() + 1, "rb");
    if (!f) {
      std::fprintf(stderr, "cannot open graph file '%s'\n",
                   opts.model.c_str() + 1);
      return 1;
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(f);
    graph = parse_graph(text, opts.model.substr(1));
  } else {
    const ModelBuilder builder = find_builder(opts.model);
    if (!builder) return usage();
    if (opts.model == "resnet34_3d" && opts.config.spatial > 128) {
      opts.config.spatial = 96;  // cubed volumes; keep the simulation tractable
    }
    graph = builder(opts.config);
  }
  std::printf("%s: %d nodes, %.2f GFLOP (batch %lld, %lldx%lld input)\n",
              graph.name().c_str(), graph.num_nodes(),
              static_cast<double>(graph.total_flops()) / 1e9,
              static_cast<long long>(opts.config.batch),
              static_cast<long long>(opts.config.spatial),
              static_cast<long long>(opts.config.spatial));

  if (opts.dot) {
    std::printf("%s", graph.to_dot().c_str());
    return 0;
  }

  const Graph brickdl_graph =
      opts.fuse ? fuse_conv_pointwise(graph) : graph;
  if (opts.partition_only) {
    EngineOptions eopts;
    eopts.partition.strategy = opts.partition_strategy;
    const Status preflight = validate_engine_options(eopts);
    if (!preflight.ok()) {
      std::fprintf(stderr, "%s\n", preflight.to_string().c_str());
      return 1;
    }
    Engine engine(brickdl_graph, eopts);
    std::printf("\n%s", engine.partition().describe(brickdl_graph).c_str());
    std::printf("predicted total: %.3f ms (%s partitioner)\n",
                predicted_partition_seconds(brickdl_graph, engine.partition(),
                                            eopts.partition.machine) *
                    1e3,
                opts.partition_strategy.c_str());
    return 0;
  }

  if (!opts.trace_path.empty() || !opts.report_path.empty()) {
    // Profiled run: one BrickDL engine pass with the §4 cost model running
    // alongside, tracing enabled for its duration.
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(!opts.trace_path.empty());
    EngineOptions eopts;
    eopts.profile = true;
    eopts.partition.strategy = opts.partition_strategy;
    MemoryHierarchySim sim(MachineParams::a100());
    ModelBackend backend(brickdl_graph, sim);
    Engine engine(brickdl_graph, eopts);
    Result<EngineResult> run = engine.run_checked(backend);
    obs::Tracer::instance().set_enabled(false);
    if (!run.ok()) {
      std::fprintf(stderr, "brickdl run failed: %s\n",
                   run.status().to_string().c_str());
      return 1;
    }
    const obs::Json report =
        obs::make_run_report(brickdl_graph, run.value(), sim.params());
    if (!opts.trace_path.empty()) {
      if (!write_text_file(opts.trace_path,
                           obs::Tracer::instance().export_chrome_json())) {
        std::fprintf(stderr, "cannot write trace to '%s'\n",
                     opts.trace_path.c_str());
        return 1;
      }
      std::printf("trace: %s (open at https://ui.perfetto.dev)\n",
                  opts.trace_path.c_str());
    }
    if (!opts.report_path.empty()) {
      if (!write_text_file(opts.report_path, report.dump(1) + "\n")) {
        std::fprintf(stderr, "cannot write report to '%s'\n",
                     opts.report_path.c_str());
        return 1;
      }
      std::printf("report: %s\n", opts.report_path.c_str());
    }
    std::printf("\n%s", obs::report_table(report).c_str());
    return 0;
  }

  TextTable table({"system", "total (ms)", "DRAM (ms)", "compute (ms)",
                   "DRAM txns", "rel cuDNN"});
  Modeled base;
  for (const char* system : {"cudnn", "torchscript", "xla", "brickdl"}) {
    if (opts.system != "all" && opts.system != system) continue;
    const Modeled m = run_system(
        std::string(system) == "brickdl" ? brickdl_graph : graph, system,
        opts.partition_strategy);
    if (std::string(system) == "cudnn" || base.total_ms == 0.0) base = m;
    table.add_row({system, TextTable::num(m.total_ms),
                   TextTable::num(m.dram_ms), TextTable::num(m.compute_ms),
                   std::to_string(m.dram_txns),
                   TextTable::num(m.total_ms / base.total_ms)});
    std::printf("%s: done\n", system);
    std::fflush(stdout);
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}
