// brickdl_cli — inspect and model any zoo network from the command line.
//
//   brickdl_cli <model> [options]
//
//   models:  resnet50 | drn26 | resnet34_3d | darknet53 | vgg16 | deepcam
//            | inception_v4 | @<path>  (load a serialized graph file,
//                                       see graph/serialize.hpp)
//   options:
//     --batch N        batch size                (default 8)
//     --spatial N      input resolution per dim  (default 224; 3D models cube it)
//     --width-div N    divide channel widths     (default 1)
//     --system S       cudnn | torchscript | xla | brickdl | all  (default all)
//     --partition-strategy S   paper | greedy — BrickDL graph partitioner
//                      (default paper; see DESIGN.md §11). Unknown names are
//                      rejected up front by validate_engine_options.
//     --partition      print the partition plan and exit
//     --dot            print the graph as Graphviz and exit
//     --no-fuse        skip the conv+pointwise rewrite for BrickDL
//     --trace[=PATH]   profiled BrickDL run; write a Chrome/Perfetto trace
//                      (default trace.json; open at https://ui.perfetto.dev)
//     --report[=PATH]  profiled BrickDL run; write the predicted-vs-observed
//                      run report JSON (default report.json) and print the
//                      comparison table
//     --plan-cache DIR     persistent plan cache (DESIGN.md §15): warm-start
//                      the engine's partition from DIR, store on a miss
//     --calibration PATH   load a brickdl-calibration-v1 JSON and plan with
//                      the fitted cost-model constants
//     --calibrate-out PATH profiled BrickDL run; fit the cost-model constants
//                      from this run's report and write the
//                      brickdl-calibration-v1 JSON (with residuals) to PATH
//     --metrics-out PATH   write a brickdl-metrics-v1 snapshot of the metrics
//                      registry after the profiled run (plan-cache counters
//                      land here)
//
// Performance numbers come from the simulated A100 (see DESIGN.md §2).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "baselines/fused_graph.hpp"
#include "core/engine.hpp"
#include "core/plan_cache.hpp"
#include "graph/rewrite.hpp"
#include "graph/serialize.hpp"
#include "models/models.hpp"
#include "obs/calibrate.hpp"
#include "obs/exporter.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

using namespace brickdl;

namespace {

struct Options {
  std::string model;
  ModelConfig config;
  std::string system = "all";
  std::string partition_strategy = "paper";
  bool partition_only = false;
  bool dot = false;
  bool fuse = true;
  std::string trace_path;   ///< --trace: Chrome-trace output (empty = off)
  std::string report_path;  ///< --report: run-report JSON output (empty = off)
  std::string plan_cache_dir;     ///< --plan-cache (empty = off)
  std::string calibration_path;   ///< --calibration: constants to load
  std::string calibrate_out;      ///< --calibrate-out: fit output (empty = off)
  std::string metrics_out;        ///< --metrics-out: snapshot output
};

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

bool read_text_file(const std::string& path, std::string* text) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text->append(buffer, n);
  }
  std::fclose(f);
  return true;
}

/// Parse and validate a --calibration file; exits the process with a
/// diagnostic on any failure (a bad calibration should never plan silently).
obs::CalibratedConstants load_calibration(const std::string& path) {
  std::string text;
  if (!read_text_file(path, &text)) {
    std::fprintf(stderr, "cannot open calibration file '%s'\n", path.c_str());
    std::exit(1);
  }
  Result<obs::Json> doc = obs::Json::parse(text);
  if (!doc.ok()) {
    std::fprintf(stderr, "calibration '%s': %s\n", path.c_str(),
                 doc.status().to_string().c_str());
    std::exit(1);
  }
  Result<obs::CalibratedConstants> constants =
      obs::calibration_from_json(doc.value());
  if (!constants.ok()) {
    std::fprintf(stderr, "calibration '%s': %s\n", path.c_str(),
                 constants.status().to_string().c_str());
    std::exit(1);
  }
  return constants.take();
}

ModelBuilder find_builder(const std::string& name) {
  const struct {
    const char* key;
    ModelBuilder builder;
  } table[] = {{"resnet50", &build_resnet50},
               {"drn26", &build_drn26},
               {"resnet34_3d", &build_resnet34_3d},
               {"darknet53", &build_darknet53},
               {"vgg16", &build_vgg16},
               {"deepcam", &build_deepcam},
               {"inception_v4", &build_inception_v4}};
  for (const auto& entry : table) {
    if (name == entry.key) return entry.builder;
  }
  return nullptr;
}

int usage() {
  std::fprintf(stderr,
               "usage: brickdl_cli <model> [--batch N] [--spatial N] "
               "[--width-div N]\n"
               "                   [--system cudnn|torchscript|xla|brickdl|all]"
               " [--partition] [--dot] [--no-fuse]\n"
               "                   [--partition-strategy paper|greedy]\n"
               "                   [--trace[=t.json]] [--report[=r.json]]\n"
               "                   [--plan-cache DIR] [--calibration c.json]\n"
               "                   [--calibrate-out c.json] "
               "[--metrics-out m.json]\n"
               "models: resnet50 drn26 resnet34_3d darknet53 vgg16 deepcam "
               "inception_v4\n");
  return 2;
}

struct Modeled {
  double dram_ms = 0.0;
  double compute_ms = 0.0;
  double total_ms = 0.0;
  i64 dram_txns = 0;
};

Modeled run_system(const Graph& graph, const std::string& system,
                   const std::string& partition_strategy,
                   const std::optional<obs::CalibratedConstants>& calibration) {
  MemoryHierarchySim sim(MachineParams::a100());
  ModelBackend backend(graph, sim);
  if (system == "brickdl") {
    EngineOptions eopts;
    eopts.partition.strategy = partition_strategy;
    eopts.partition.calibration = calibration;
    Engine engine(graph, eopts);
    engine.run(backend);
  } else {
    const FusionRules rules = system == "torchscript"
                                  ? FusionRules::kConvPointwise
                              : system == "xla" ? FusionRules::kAggressive
                                                : FusionRules::kNone;
    FusedGraphExecutor exec(graph, backend, rules, 32);
    exec.run();
    sim.flush();
  }
  const CostModel cost(sim.params());
  const Breakdown b = cost.breakdown(sim.counters(), backend.tally());
  Modeled m;
  m.dram_ms = b.dram * 1e3;
  m.compute_ms = b.compute_side() * 1e3;
  m.total_ms = (b.dram + b.compute_side()) * 1e3;
  m.dram_txns = sim.counters().dram();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Options opts;
  opts.model = argv[1];
  opts.config.batch = 8;
  opts.config.spatial = 224;
  opts.config.width_div = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--batch") {
      opts.config.batch = std::atol(next());
    } else if (arg == "--spatial") {
      opts.config.spatial = std::atol(next());
    } else if (arg == "--width-div") {
      opts.config.width_div = std::atol(next());
    } else if (arg == "--system") {
      opts.system = next();
    } else if (arg == "--partition-strategy") {
      const char* value = next();
      if (!value) return usage();
      opts.partition_strategy = value;
    } else if (arg == "--partition") {
      opts.partition_only = true;
    } else if (arg == "--dot") {
      opts.dot = true;
    } else if (arg == "--no-fuse") {
      opts.fuse = false;
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      opts.trace_path =
          arg.size() > 8 ? arg.substr(8) : std::string("trace.json");
    } else if (arg == "--report" || arg.rfind("--report=", 0) == 0) {
      opts.report_path =
          arg.size() > 9 ? arg.substr(9) : std::string("report.json");
    } else if (arg == "--plan-cache") {
      const char* value = next();
      if (!value) return usage();
      opts.plan_cache_dir = value;
    } else if (arg == "--calibration") {
      const char* value = next();
      if (!value) return usage();
      opts.calibration_path = value;
    } else if (arg == "--calibrate-out") {
      const char* value = next();
      if (!value) return usage();
      opts.calibrate_out = value;
    } else if (arg == "--metrics-out") {
      const char* value = next();
      if (!value) return usage();
      opts.metrics_out = value;
    } else {
      return usage();
    }
  }

  Graph graph("empty");
  if (!opts.model.empty() && opts.model[0] == '@') {
    std::FILE* f = std::fopen(opts.model.c_str() + 1, "rb");
    if (!f) {
      std::fprintf(stderr, "cannot open graph file '%s'\n",
                   opts.model.c_str() + 1);
      return 1;
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(f);
    graph = parse_graph(text, opts.model.substr(1));
  } else {
    const ModelBuilder builder = find_builder(opts.model);
    if (!builder) return usage();
    if (opts.model == "resnet34_3d" && opts.config.spatial > 128) {
      opts.config.spatial = 96;  // cubed volumes; keep the simulation tractable
    }
    graph = builder(opts.config);
  }
  std::printf("%s: %d nodes, %.2f GFLOP (batch %lld, %lldx%lld input)\n",
              graph.name().c_str(), graph.num_nodes(),
              static_cast<double>(graph.total_flops()) / 1e9,
              static_cast<long long>(opts.config.batch),
              static_cast<long long>(opts.config.spatial),
              static_cast<long long>(opts.config.spatial));

  if (opts.dot) {
    std::printf("%s", graph.to_dot().c_str());
    return 0;
  }

  const Graph brickdl_graph =
      opts.fuse ? fuse_conv_pointwise(graph) : graph;
  // Load --calibration up front so a missing or malformed file is a hard
  // error on every code path, including the plain comparison table.
  std::optional<obs::CalibratedConstants> calibration;
  if (!opts.calibration_path.empty()) {
    calibration = load_calibration(opts.calibration_path);
  }
  if (opts.partition_only) {
    EngineOptions eopts;
    eopts.partition.strategy = opts.partition_strategy;
    eopts.plan_cache_dir = opts.plan_cache_dir;
    eopts.partition.calibration = calibration;
    const Status preflight = validate_engine_options(eopts);
    if (!preflight.ok()) {
      std::fprintf(stderr, "%s\n", preflight.to_string().c_str());
      return 1;
    }
    Engine engine(brickdl_graph, eopts);
    std::printf("\n%s", engine.partition().describe(brickdl_graph).c_str());
    std::printf("predicted total: %.3f ms (%s partitioner)\n",
                predicted_partition_seconds(brickdl_graph, engine.partition(),
                                            effective_machine(
                                                eopts.partition)) *
                    1e3,
                opts.partition_strategy.c_str());
    return 0;
  }

  const bool profiled_run =
      !opts.trace_path.empty() || !opts.report_path.empty() ||
      !opts.calibrate_out.empty() || !opts.metrics_out.empty() ||
      !opts.plan_cache_dir.empty();
  if (profiled_run) {
    // Profiled run: one BrickDL engine pass with the §4 cost model running
    // alongside, tracing enabled for its duration.
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(!opts.trace_path.empty());
    EngineOptions eopts;
    eopts.profile = true;
    eopts.partition.strategy = opts.partition_strategy;
    eopts.plan_cache_dir = opts.plan_cache_dir;
    eopts.partition.calibration = calibration;
    MemoryHierarchySim sim(MachineParams::a100());
    ModelBackend backend(brickdl_graph, sim);
    Engine engine(brickdl_graph, eopts);
    Result<EngineResult> run = engine.run_checked(backend);
    obs::Tracer::instance().set_enabled(false);
    if (!run.ok()) {
      std::fprintf(stderr, "brickdl run failed: %s\n",
                   run.status().to_string().c_str());
      return 1;
    }
    const obs::Json report =
        obs::make_run_report(brickdl_graph, run.value(), sim.params());
    if (!opts.trace_path.empty()) {
      if (!write_text_file(opts.trace_path,
                           obs::Tracer::instance().export_chrome_json())) {
        std::fprintf(stderr, "cannot write trace to '%s'\n",
                     opts.trace_path.c_str());
        return 1;
      }
      std::printf("trace: %s (open at https://ui.perfetto.dev)\n",
                  opts.trace_path.c_str());
    }
    if (!opts.report_path.empty()) {
      if (!write_text_file(opts.report_path, report.dump(1) + "\n")) {
        std::fprintf(stderr, "cannot write report to '%s'\n",
                     opts.report_path.c_str());
        return 1;
      }
      std::printf("report: %s\n", opts.report_path.c_str());
    }
    if (!opts.calibrate_out.empty()) {
      // Fit the §4 constants from this run's (predicted, observed) pairs and
      // emit the versioned calibration with its residuals. One run is a
      // small corpus; feeding several reports through a dedicated loop
      // tightens the fit, but even one pins the dominant bandwidth term.
      obs::CalibrationCorpus corpus;
      const Status added = corpus.add_report(report);
      if (!added.ok()) {
        std::fprintf(stderr, "calibration: %s\n", added.to_string().c_str());
        return 1;
      }
      Result<obs::CalibrationFit> fit = corpus.fit(sim.params());
      if (!fit.ok()) {
        std::fprintf(stderr, "calibration: %s\n",
                     fit.status().to_string().c_str());
        return 1;
      }
      if (!write_text_file(opts.calibrate_out,
                           fit.value().to_json().dump(1) + "\n")) {
        std::fprintf(stderr, "cannot write calibration to '%s'\n",
                     opts.calibrate_out.c_str());
        return 1;
      }
      std::printf(
          "calibration: %s (%lld samples, mean rel error %.3f -> %.3f)\n",
          opts.calibrate_out.c_str(),
          static_cast<long long>(fit.value().samples),
          fit.value().stock_mean_rel_error,
          fit.value().calibrated_mean_rel_error);
    }
    if (!opts.metrics_out.empty()) {
      const obs::Json snapshot = obs::metrics_snapshot(obs::metrics(), 0);
      if (!write_text_file(opts.metrics_out, snapshot.dump(1) + "\n")) {
        std::fprintf(stderr, "cannot write metrics to '%s'\n",
                     opts.metrics_out.c_str());
        return 1;
      }
      std::printf("metrics: %s\n", opts.metrics_out.c_str());
    }
    std::printf("\n%s", obs::report_table(report).c_str());
    return 0;
  }

  TextTable table({"system", "total (ms)", "DRAM (ms)", "compute (ms)",
                   "DRAM txns", "rel cuDNN"});
  Modeled base;
  for (const char* system : {"cudnn", "torchscript", "xla", "brickdl"}) {
    if (opts.system != "all" && opts.system != system) continue;
    const Modeled m = run_system(
        std::string(system) == "brickdl" ? brickdl_graph : graph, system,
        opts.partition_strategy, calibration);
    if (std::string(system) == "cudnn" || base.total_ms == 0.0) base = m;
    table.add_row({system, TextTable::num(m.total_ms),
                   TextTable::num(m.dram_ms), TextTable::num(m.compute_ms),
                   std::to_string(m.dram_txns),
                   TextTable::num(m.total_ms / base.total_ms)});
    std::printf("%s: done\n", system);
    std::fflush(stdout);
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}
