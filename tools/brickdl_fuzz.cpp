// Standalone differential fuzz driver.
//
// Sweep mode (default): generate graphs and run every executor variant
// against the eager oracle, printing one replay line per failure.
//
//   brickdl_fuzz --seed 1 --graphs 200
//
// Replay mode: re-run exactly one graph (optionally one variant), e.g. the
// line a failing test or a previous sweep printed:
//
//   brickdl_fuzz --seed 1 --graph-idx 37 --variant memo-par-b8-w4 --dump
//
// Exit status: 0 when every variant agreed, 1 otherwise, 2 on bad usage.
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "graph/serialize.hpp"
#include "testing/differential.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: brickdl_fuzz [options]\n"
         "  --seed N        sweep seed (default 1)\n"
         "  --graphs K      graphs to sweep (default 50)\n"
         "  --graph-idx K   replay one graph index instead of sweeping\n"
         "  --variant S     only run variants whose name contains S\n"
         "  --tolerance X   max |got-oracle| accepted (default 0 = exact)\n"
         "  --max-ops N     cap on generated ops per graph (default 8)\n"
         "  --min-spatial N lower bound on input spatial extents (default 8)\n"
         "  --max-spatial N upper bound on input spatial extents (default 18)\n"
         "  --plan-cache D  add the cache-backed \"-cache\" twin variants,\n"
         "                  persisting plans under directory D\n"
         "  --dump          print the generated graph(s) before running\n"
         "  --quiet         suppress per-graph progress lines\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brickdl;

  u64 seed = 1;
  int graphs = 50;
  int graph_idx = -1;
  bool dump = false;
  bool verbose = true;
  DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    // Numeric values exit with usage on garbage instead of an uncaught
    // stoll/stod abort.
    auto number = [&](auto parse) {
      const std::string s = value();
      try {
        size_t pos = 0;
        auto v = parse(s, &pos);
        if (pos != s.size()) throw std::invalid_argument(s);
        return v;
      } catch (const std::exception&) {
        std::cerr << "bad numeric value '" << s << "' for " << arg << "\n";
        usage();
        std::exit(2);
      }
    };
    auto as_i64 = [&] {
      return number([](const std::string& s, size_t* p) { return std::stoll(s, p); });
    };
    if (arg == "--seed") {
      seed = static_cast<u64>(as_i64());
    } else if (arg == "--graphs") {
      graphs = static_cast<int>(as_i64());
    } else if (arg == "--graph-idx") {
      graph_idx = static_cast<int>(as_i64());
    } else if (arg == "--variant") {
      options.variant_filter = value();
    } else if (arg == "--plan-cache") {
      options.plan_cache_dir = value();
    } else if (arg == "--tolerance") {
      options.tolerance =
          number([](const std::string& s, size_t* p) { return std::stod(s, p); });
    } else if (arg == "--max-ops") {
      options.gen.max_ops = static_cast<int>(as_i64());
    } else if (arg == "--min-spatial") {
      options.gen.min_spatial = as_i64();
    } else if (arg == "--max-spatial") {
      options.gen.max_spatial = as_i64();
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--quiet") {
      verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return 2;
    }
  }

  const int lo = graph_idx >= 0 ? graph_idx : 0;
  const int hi = graph_idx >= 0 ? graph_idx + 1 : graphs;
  std::vector<DiffFailure> failures;
  for (int idx = lo; idx < hi; ++idx) {
    const Graph g = random_graph(graph_seed(seed, idx), options.gen);
    if (dump) {
      std::cout << "# graph " << idx << " (" << g.name() << ")\n"
                << serialize_graph(g) << "\n";
    }
    std::vector<DiffFailure> f = run_differential(seed, idx, options);
    if (verbose) {
      std::cerr << "[fuzz] graph " << idx << " '" << g.name()
                << "' nodes=" << g.num_nodes() << " input="
                << g.node(0).out_shape.str() << " -> "
                << (f.empty() ? "ok" : "FAIL") << "\n";
    }
    for (DiffFailure& one : f) failures.push_back(std::move(one));
  }

  for (const DiffFailure& f : failures) {
    std::cout << "FAIL " << f.variant << ": " << f.detail
              << "\n  replay: brickdl_fuzz " << f.replay << "\n";
  }
  if (failures.empty()) {
    std::cout << "all " << (hi - lo) << " graph(s) agreed across variants\n";
    return 0;
  }
  std::cout << failures.size() << " failing variant run(s)\n";
  return 1;
}
