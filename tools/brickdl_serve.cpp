// brickdl_serve — replay a request trace through the serving front-end
// (DESIGN.md §10) and report batching behaviour.
//
//   brickdl_serve <trace-file> [options]
//   brickdl_serve --demo N     [options]
//
// Trace file: one request per line, `#` starts a comment:
//
//   <offset_us> <rows> [<seed>]
//
// where offset_us is the submit time relative to replay start, rows is the
// request's batch-row count, and seed (default: line number) seeds its input
// tensor. `--demo N` synthesizes an N-request trace instead (200 us apart,
// rows cycling 1..3).
//
//   options:
//     --layers N        conv-chain depth for the served model  (default 3)
//     --spatial N       input resolution                       (default 16)
//     --channels N      input channels                         (default 2)
//     --max-batch N     flush when N requests are pending      (default 8)
//     --max-wait-us N   flush when the oldest waited this long (default 2000)
//     --max-rows N      split batches above N stacked rows     (default 0 = off)
//     --budget N        footprint budget in bytes (0 = engine's L2 budget)
//     --strategy S      padded | memoized | wavefront  (default: engine picks)
//     --workers N       backend workers per run                (default 4)
//     --seed N          base seed for weights + demo inputs    (default 42)
//     --fast            ignore trace offsets; submit as fast as possible
//     --trace[=PATH]    write a Chrome/Perfetto trace of the serve spans
//                       (default serve_trace.json)
//
// The exit status is nonzero if any request fails, so the tool doubles as a
// smoke check for the serving path.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/models.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace brickdl;

namespace {

struct TraceEntry {
  i64 offset_us = 0;
  i64 rows = 1;
  u64 seed = 0;
};

struct Options {
  std::string trace_file;
  int demo = 0;
  int layers = 3;
  i64 spatial = 16;
  i64 channels = 2;
  u64 seed = 42;
  bool fast = false;
  std::string trace_path;
  serve::ServeOptions serve;
};

int usage() {
  std::fprintf(stderr,
               "usage: brickdl_serve <trace-file> | --demo N\n"
               "  [--layers N] [--spatial N] [--channels N]\n"
               "  [--max-batch N] [--max-wait-us N] [--max-rows N] "
               "[--budget BYTES]\n"
               "  [--strategy padded|memoized|wavefront] [--workers N]\n"
               "  [--seed N] [--fast] [--trace[=serve_trace.json]]\n"
               "trace file: `<offset_us> <rows> [<seed>]` per line, "
               "# comments\n");
  return 2;
}

bool parse_trace(const std::string& path, std::vector<TraceEntry>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  u64 line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    TraceEntry entry;
    if (!(fields >> entry.offset_us)) continue;  // blank / comment-only line
    if (!(fields >> entry.rows) || entry.offset_us < 0 || entry.rows < 1) {
      std::fprintf(stderr, "%s:%llu: expected `<offset_us> <rows> [<seed>]`\n",
                   path.c_str(), static_cast<unsigned long long>(line_no));
      return false;
    }
    if (!(fields >> entry.seed)) entry.seed = line_no;
    out.push_back(entry);
  }
  return !out.empty();
}

std::vector<TraceEntry> demo_trace(int n, u64 seed) {
  std::vector<TraceEntry> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({static_cast<i64>(i) * 200, 1 + (i % 3),
                   seed + static_cast<u64>(i)});
  }
  return out;
}

Tensor make_request(const Graph& model, i64 rows, u64 seed) {
  Dims dims = model.node(0).out_shape.dims;
  dims[0] = rows;
  Tensor t(dims);
  Rng rng(seed);
  t.fill_random(rng);
  return t;
}

std::string pctl(const obs::Histogram& h) {
  if (h.count() == 0) return "-";
  return TextTable::num(h.mean()) + " us (p99 <= " +
         std::to_string(h.percentile(0.99)) + ")";
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Empty string (never nullptr) when the value is missing, so the numeric
    // parses below stay crash-free; the flag loop then falls out to usage().
    auto next = [&]() -> const char* {
      if (i + 1 < argc) return argv[++i];
      missing_value = true;
      return "";
    };
    if (arg == "--demo") {
      opts.demo = std::atoi(next());
    } else if (arg == "--layers") {
      opts.layers = std::atoi(next());
    } else if (arg == "--spatial") {
      opts.spatial = std::atol(next());
    } else if (arg == "--channels") {
      opts.channels = std::atol(next());
    } else if (arg == "--max-batch") {
      opts.serve.max_batch = std::atoi(next());
    } else if (arg == "--max-wait-us") {
      opts.serve.max_wait_us = std::atol(next());
    } else if (arg == "--max-rows") {
      opts.serve.max_batch_rows = std::atol(next());
    } else if (arg == "--budget") {
      opts.serve.footprint_budget = std::atol(next());
    } else if (arg == "--workers") {
      opts.serve.backend_workers = std::atoi(next());
    } else if (arg == "--seed") {
      opts.seed = static_cast<u64>(std::atoll(next()));
    } else if (arg == "--fast") {
      opts.fast = true;
    } else if (arg == "--strategy") {
      const char* s = next();
      if (std::strcmp(s, "padded") == 0) {
        opts.serve.engine.force_strategy = Strategy::kPadded;
      } else if (std::strcmp(s, "memoized") == 0) {
        opts.serve.engine.force_strategy = Strategy::kMemoized;
      } else if (std::strcmp(s, "wavefront") == 0) {
        opts.serve.engine.force_strategy = Strategy::kWavefront;
      } else {
        return usage();
      }
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      opts.trace_path =
          arg.size() > 8 ? arg.substr(8) : std::string("serve_trace.json");
    } else if (!arg.empty() && arg[0] != '-' && opts.trace_file.empty()) {
      opts.trace_file = arg;
    } else {
      return usage();
    }
  }
  if (missing_value) return usage();
  if (opts.trace_file.empty() && opts.demo <= 0) return usage();

  std::vector<TraceEntry> trace;
  if (!opts.trace_file.empty()) {
    if (!parse_trace(opts.trace_file, trace)) return 1;
  } else {
    trace = demo_trace(opts.demo, opts.seed);
  }

  const Graph model = build_conv_chain_2d(opts.layers, /*batch=*/1,
                                          opts.spatial, opts.channels);
  std::printf("%s: %d nodes, input %s, %zu request(s)\n",
              model.name().c_str(), model.num_nodes(),
              model.node(0).out_shape.dims.str().c_str(), trace.size());

  obs::metrics().reset();
  if (!opts.trace_path.empty()) {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }

  WeightStore weights(opts.seed);
  serve::Server server(model, weights, opts.serve);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<serve::RequestResult>> futures;
  futures.reserve(trace.size());
  for (const TraceEntry& entry : trace) {
    if (!opts.fast) {
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(entry.offset_us));
    }
    futures.push_back(
        server.submit(make_request(model, entry.rows, entry.seed)));
  }

  int failed = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const serve::RequestResult result = futures[i].get();
    if (!result.status.ok()) {
      ++failed;
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   result.status.to_string().c_str());
    }
  }
  server.shutdown();
  obs::Tracer::instance().set_enabled(false);

  obs::MetricsRegistry& m = obs::metrics();
  TextTable table({"metric", "value"});
  table.add_row({"requests", std::to_string(trace.size())});
  table.add_row({"completed", std::to_string(m.counter("serve.completed").value())});
  table.add_row({"failed", std::to_string(m.counter("serve.failed").value())});
  table.add_row({"rejected", std::to_string(m.counter("serve.rejected").value())});
  table.add_row({"flushes", std::to_string(m.counter("serve.flushes").value())});
  table.add_row({"batches", std::to_string(m.counter("serve.batches").value())});
  table.add_row({"splits", std::to_string(m.counter("serve.splits").value())});
  table.add_row(
      {"plan cache hit/miss",
       std::to_string(m.counter("serve.plan_cache_hits").value()) + "/" +
           std::to_string(m.counter("serve.plan_cache_misses").value())});
  const obs::Histogram& occupancy = m.histogram("serve.batch_occupancy");
  table.add_row({"batch occupancy",
                 "mean " + TextTable::num(occupancy.mean()) + ", max " +
                     std::to_string(occupancy.max())});
  const obs::Histogram& rows = m.histogram("serve.batch_rows");
  table.add_row({"stacked rows", "mean " + TextTable::num(rows.mean()) +
                                     ", max " + std::to_string(rows.max())});
  table.add_row({"coalesce latency", pctl(m.histogram("serve.coalesce_us"))});
  table.add_row({"run latency", pctl(m.histogram("serve.run_us"))});
  table.add_row({"request latency", pctl(m.histogram("serve.request_us"))});
  std::printf("\n%s", table.render().c_str());

  if (!opts.trace_path.empty()) {
    if (!write_text_file(opts.trace_path,
                         obs::Tracer::instance().export_chrome_json())) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   opts.trace_path.c_str());
      return 1;
    }
    std::printf("trace: %s (open at https://ui.perfetto.dev)\n",
                opts.trace_path.c_str());
  }
  return failed == 0 ? 0 : 1;
}
