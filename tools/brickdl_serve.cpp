// brickdl_serve — replay a request trace through the serving front-end
// (DESIGN.md §10), or drive it into open-loop overload (DESIGN.md §12),
// and report batching + shedding behaviour.
//
//   brickdl_serve <trace-file> [options]
//   brickdl_serve --demo N     [options]
//   brickdl_serve --overload M [options]
//
// Trace file: one request per line, `#` starts a comment:
//
//   <offset_us> <rows> [<seed>]
//
// where offset_us is the submit time relative to replay start, rows is the
// request's batch-row count, and seed (default: line number) seeds its input
// tensor. `--demo N` synthesizes an N-request trace instead (200 us apart,
// rows cycling 1..3).
//
// `--overload M` ignores the trace: it first estimates the server's solo
// service time, then submits bursts at M× that capacity for --duration-ms,
// with two deadline classes (tight = 3× service time, loose = 30×), and
// reports served/shed counts, SLO attainment, and latency percentiles per
// class. Shed requests (kOverloaded / kDeadlineExceeded / kShuttingDown)
// are the *expected* outcome under overload and do not fail the exit code;
// any other failure does. In replay/demo mode every request is expected to
// be served, so failures AND sheds exit non-zero.
//
//   options:
//     --layers N        conv-chain depth for the served model  (default 3)
//     --spatial N       input resolution                       (default 16)
//     --channels N      input channels                         (default 2)
//     --max-batch N     flush when N requests are pending      (default 8)
//     --max-wait-us N   flush when the oldest waited this long (default 2000)
//     --max-rows N      split batches above N stacked rows     (default 0 = off)
//     --budget N        footprint budget in bytes (0 = engine's L2 budget)
//     --queue-depth N   bounded admission: max queued requests (default 0 = off;
//                       overload mode defaults to 4*max-batch)
//     --deadline-us N   default per-request deadline           (default 0 = off)
//     --breaker-k N     breaker opens after N failed runs      (default 3)
//     --breaker-cooldown N  degraded runs before a probe       (default 16)
//     --overload M      open-loop overload at M x capacity
//     --duration-ms N   overload run length                    (default 1000)
//     --drain-ms N      shutdown drain deadline in overload mode (default 500)
//     --strategy S      padded | memoized | wavefront  (default: engine picks)
//     --workers N       backend workers per run                (default 4)
//     --seed N          base seed for weights + demo inputs    (default 42)
//     --fast            ignore trace offsets; submit as fast as possible
//     --trace[=PATH]    write a Chrome/Perfetto trace of the serve spans
//                       (default serve_trace.json) — request spans carry
//                       flow links keyed by request id in both modes
//     --events[=PATH]   write the structured serving event log
//                       (default serve_events.json)
//     --metrics-out F   append periodic brickdl-metrics-v1 JSONL snapshots
//     --prom F          write the final metrics as Prometheus text exposition
//     --flight-dir DIR  arm the flight recorder: breaker opens, degraded
//                       runs, and non-shed failures dump brickdl-flight-v1
//                       records into DIR
//     --json F          (overload mode) write machine-readable capacity +
//                       per-class latency stats (brickdl-serve-bench-v1)
//     --plan-cache DIR  warm-start batch-plan engines from DIR (persistent
//                       plan cache; cold runs populate it)
//     --calibration F   load brickdl-calibration-v1 constants and plan with
//                       the calibrated cost model
//
// The exit status is nonzero if any request fails (replay mode: fails or is
// shed), so the tool doubles as a smoke check for the serving path.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/models.hpp"
#include "obs/calibrate.hpp"
#include "obs/events.hpp"
#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace brickdl;

namespace {

struct TraceEntry {
  i64 offset_us = 0;
  i64 rows = 1;
  u64 seed = 0;
};

struct Options {
  std::string trace_file;
  int demo = 0;
  double overload = 0.0;  // > 0 selects open-loop overload mode
  i64 duration_ms = 1000;
  i64 drain_ms = 500;
  bool queue_depth_set = false;
  int layers = 3;
  i64 spatial = 16;
  i64 channels = 2;
  u64 seed = 42;
  bool fast = false;
  std::string trace_path;
  std::string events_path;
  std::string metrics_out;
  std::string prom_path;
  std::string flight_dir;
  std::string json_path;  ///< overload-mode machine-readable stats
  serve::ServeOptions serve;
};

int usage() {
  std::fprintf(stderr,
               "usage: brickdl_serve <trace-file> | --demo N | --overload M\n"
               "  [--layers N] [--spatial N] [--channels N]\n"
               "  [--max-batch N] [--max-wait-us N] [--max-rows N] "
               "[--budget BYTES]\n"
               "  [--queue-depth N] [--deadline-us N]\n"
               "  [--breaker-k N] [--breaker-cooldown N]\n"
               "  [--duration-ms N] [--drain-ms N]\n"
               "  [--strategy padded|memoized|wavefront] [--workers N]\n"
               "  [--seed N] [--fast] [--trace[=serve_trace.json]]\n"
               "  [--events[=serve_events.json]] [--metrics-out FILE]\n"
               "  [--prom FILE] [--flight-dir DIR] [--json FILE]\n"
               "  [--plan-cache DIR] [--calibration FILE]\n"
               "trace file: `<offset_us> <rows> [<seed>]` per line, "
               "# comments\n");
  return 2;
}

bool parse_trace(const std::string& path, std::vector<TraceEntry>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  u64 line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    TraceEntry entry;
    if (!(fields >> entry.offset_us)) continue;  // blank / comment-only line
    if (!(fields >> entry.rows) || entry.offset_us < 0 || entry.rows < 1) {
      std::fprintf(stderr, "%s:%llu: expected `<offset_us> <rows> [<seed>]`\n",
                   path.c_str(), static_cast<unsigned long long>(line_no));
      return false;
    }
    if (!(fields >> entry.seed)) entry.seed = line_no;
    out.push_back(entry);
  }
  return !out.empty();
}

std::vector<TraceEntry> demo_trace(int n, u64 seed) {
  std::vector<TraceEntry> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({static_cast<i64>(i) * 200, 1 + (i % 3),
                   seed + static_cast<u64>(i)});
  }
  return out;
}

Tensor make_request(const Graph& model, i64 rows, u64 seed) {
  Dims dims = model.node(0).out_shape.dims;
  dims[0] = rows;
  Tensor t(dims);
  Rng rng(seed);
  t.fill_random(rng);
  return t;
}

std::string pctl(const obs::Histogram& h) {
  if (h.count() == 0) return "-";
  return TextTable::num(h.mean()) + " us (p99 <= " +
         std::to_string(h.percentile(0.99)) + ")";
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

i64 counter_value(const char* name) {
  return obs::metrics().counter(name).value();
}

void add_shed_rows(TextTable& table) {
  obs::MetricsRegistry& m = obs::metrics();
  table.add_row({"shed (overload)",
                 std::to_string(m.counter("serve.shed.overload").value())});
  table.add_row({"shed (deadline expired)",
                 std::to_string(m.counter("serve.shed.deadline").value())});
  table.add_row({"shed (predicted unmeetable)",
                 std::to_string(m.counter("serve.shed.predicted").value())});
  table.add_row({"shed (shutdown drain)",
                 std::to_string(m.counter("serve.shed.shutdown").value())});
  table.add_row({"deadline missed (served late)",
                 std::to_string(m.counter("serve.deadline.missed").value())});
  table.add_row(
      {"breaker opens/probes/closes",
       std::to_string(m.counter("serve.breaker.opens").value()) + "/" +
           std::to_string(m.counter("serve.breaker.probes").value()) + "/" +
           std::to_string(m.counter("serve.breaker.closes").value())});
}

u64 now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

/// Flush every telemetry artifact the flags asked for: Perfetto trace,
/// structured event log, final metrics snapshot (JSONL + Prometheus via the
/// exporter), and a flight-recorder tally. Shared by the overload and
/// replay exits so both modes export identically. Returns false (after
/// reporting which artifact failed) when any write fails.
bool finalize_telemetry(const Options& opts, obs::MetricsExporter* exporter) {
  bool ok = true;
  obs::Tracer::instance().set_enabled(false);
  if (exporter) exporter->stop();  // final snapshot -> JSONL + Prometheus
  if (!opts.trace_path.empty()) {
    if (write_text_file(opts.trace_path,
                        obs::Tracer::instance().export_chrome_json())) {
      std::printf("trace: %s (open at https://ui.perfetto.dev)\n",
                  opts.trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   opts.trace_path.c_str());
      ok = false;
    }
  }
  if (!opts.events_path.empty()) {
    const obs::Json log = obs::events().to_json(obs::events().capacity());
    if (write_text_file(opts.events_path, log.dump(1) + "\n")) {
      std::printf("events: %s (%llu recorded)\n", opts.events_path.c_str(),
                  static_cast<unsigned long long>(obs::events().total()));
    } else {
      std::fprintf(stderr, "cannot write events to '%s'\n",
                   opts.events_path.c_str());
      ok = false;
    }
  }
  if (!opts.metrics_out.empty() && exporter) {
    std::printf("metrics: %s (%llu JSONL snapshot(s))\n",
                opts.metrics_out.c_str(),
                static_cast<unsigned long long>(exporter->snapshots_taken()));
  }
  if (!opts.prom_path.empty()) {
    std::printf("prometheus: %s\n", opts.prom_path.c_str());
  }
  if (!opts.flight_dir.empty()) {
    const obs::FlightRecorder& fr = obs::FlightRecorder::instance();
    std::printf("flight: %llu record(s) in %s (%llu suppressed)\n",
                static_cast<unsigned long long>(fr.records_written()),
                opts.flight_dir.c_str(),
                static_cast<unsigned long long>(fr.records_suppressed()));
  }
  return ok;
}

// ---- open-loop overload mode ----

struct Outcome {
  std::future<serve::RequestResult> future;
  int cls = 0;  // 0 = tight deadline, 1 = loose deadline
  u64 submit_ns = 0;
  u64 ready_ns = 0;
  serve::RequestResult result;
};

i64 percentile_us(std::vector<i64>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

int run_overload(const Graph& model, const Options& opts) {
  serve::ServeOptions sopts = opts.serve;
  if (!opts.queue_depth_set) sopts.max_queue_depth = 4 * sopts.max_batch;

  WeightStore weights(opts.seed);

  // Capacity estimate: batched throughput, not solo latency — coalescing
  // amortizes planning and stacks rows, so the server's real capacity is
  // what a full batch sustains. One warmup wave pays plan construction;
  // the second wave's wall time / request count is the steady per-request
  // service time at capacity.
  i64 service_us = 0;
  {
    serve::Server probe(model, weights, sopts);
    const int wave = 2 * sopts.max_batch;
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::future<serve::RequestResult>> waves;
      waves.reserve(static_cast<size_t>(wave));
      const u64 t0 = now_ns();
      for (int i = 0; i < wave; ++i) {
        waves.push_back(probe.submit(make_request(
            model, 1,
            opts.seed + 1000 + static_cast<u64>(pass * wave + i))));
      }
      for (auto& f : waves) {
        auto r = f.get();
        if (!r.status.ok()) {
          std::fprintf(stderr, "capacity probe failed: %s\n",
                       r.status.to_string().c_str());
          return 1;
        }
      }
      if (pass == 1) {
        service_us = static_cast<i64>((now_ns() - t0) / 1000) / wave;
      }
    }
    probe.shutdown();
    service_us = std::max<i64>(1, service_us);
  }

  const i64 tight_us = 3 * service_us;
  const i64 loose_us = opts.serve.default_deadline_us > 0
                           ? opts.serve.default_deadline_us
                           : 30 * service_us;
  const int burst = std::max(1, static_cast<int>(opts.overload + 0.5));
  const i64 bursts = std::max<i64>(1, opts.duration_ms * 1000 / service_us);
  std::printf(
      "overload: service ~%lld us/request, %.1fx capacity -> burst of %d "
      "every %lld us for %lld bursts\n"
      "deadlines: tight %lld us, loose %lld us; queue depth cap %lld\n",
      static_cast<long long>(service_us), opts.overload, burst,
      static_cast<long long>(service_us), static_cast<long long>(bursts),
      static_cast<long long>(tight_us), static_cast<long long>(loose_us),
      static_cast<long long>(sopts.max_queue_depth));

  obs::metrics().reset();
  serve::Server server(model, weights, sopts);

  const size_t total = static_cast<size_t>(bursts) * static_cast<size_t>(burst);
  std::vector<Outcome> outcomes(total);
  std::atomic<size_t> submitted{0};

  // The collector runs concurrently with submission so ready_ns reflects
  // when each future actually resolved, not when the run ended. Requests
  // resolve near-FIFO (batches execute in queue order; sheds resolve
  // immediately), so waiting in submission order keeps the timestamps
  // honest.
  std::thread collector([&] {
    for (size_t i = 0; i < total; ++i) {
      while (submitted.load(std::memory_order_acquire) <= i) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      outcomes[i].result = outcomes[i].future.get();
      outcomes[i].ready_ns = now_ns();
    }
  });

  i64 max_depth_seen = 0;
  const auto start = std::chrono::steady_clock::now();
  u64 next_seed = opts.seed + 5000;
  for (i64 b = 0; b < bursts; ++b) {
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(b * service_us));
    for (int i = 0; i < burst; ++i) {
      const size_t idx = submitted.load(std::memory_order_relaxed);
      Outcome& o = outcomes[idx];
      o.cls = static_cast<int>(idx % 2);
      o.submit_ns = now_ns();
      o.future = server.submit(make_request(model, 1, next_seed++),
                               o.cls == 0 ? tight_us : loose_us);
      submitted.store(idx + 1, std::memory_order_release);
    }
    max_depth_seen = std::max(max_depth_seen, server.queue_depth());
  }
  server.shutdown(/*drain_deadline_us=*/opts.drain_ms * 1000);
  collector.join();

  // Per-class accounting.
  const char* cls_name[2] = {"tight", "loose"};
  const i64 cls_deadline[2] = {tight_us, loose_us};
  struct ClassStats {
    i64 submitted = 0, served = 0, shed = 0, failed = 0, slo_met = 0;
    i64 p50 = 0, p95 = 0, p99 = 0;
    double slo_pct = 0.0;
  };
  ClassStats stats[2];
  int failed = 0;
  TextTable table({"class", "submitted", "served", "shed", "failed",
                   "SLO met", "p50", "p95", "p99 (us)"});
  for (int cls = 0; cls < 2; ++cls) {
    ClassStats& s = stats[cls];
    std::vector<i64> latency_us;
    for (const Outcome& o : outcomes) {
      if (o.cls != cls) continue;
      ++s.submitted;
      const i64 us = static_cast<i64>((o.ready_ns - o.submit_ns) / 1000);
      if (o.result.status.ok()) {
        ++s.served;
        latency_us.push_back(us);
        if (us <= cls_deadline[cls]) ++s.slo_met;
      } else if (o.result.shed) {
        ++s.shed;
      } else {
        ++s.failed;
        ++failed;
        std::fprintf(stderr, "request (class %s) failed: %s\n",
                     cls_name[cls], o.result.status.to_string().c_str());
      }
    }
    std::sort(latency_us.begin(), latency_us.end());
    s.p50 = percentile_us(latency_us, 0.50);
    s.p95 = percentile_us(latency_us, 0.95);
    s.p99 = percentile_us(latency_us, 0.99);
    s.slo_pct = s.submitted > 0 ? 100.0 * static_cast<double>(s.slo_met) /
                                      static_cast<double>(s.submitted)
                                : 0.0;
    table.add_row({cls_name[cls], std::to_string(s.submitted),
                   std::to_string(s.served), std::to_string(s.shed),
                   std::to_string(s.failed),
                   TextTable::num(s.slo_pct) + "%",
                   std::to_string(s.p50), std::to_string(s.p95),
                   std::to_string(s.p99)});
  }
  std::printf("\n%s", table.render().c_str());

  TextTable summary({"metric", "value"});
  summary.add_row({"requests", std::to_string(outcomes.size())});
  summary.add_row({"completed", std::to_string(counter_value("serve.completed"))});
  summary.add_row({"failed", std::to_string(counter_value("serve.failed"))});
  summary.add_row({"rejected", std::to_string(counter_value("serve.rejected"))});
  add_shed_rows(summary);
  summary.add_row({"max queue depth seen",
                   std::to_string(max_depth_seen) + " (cap " +
                       std::to_string(sopts.max_queue_depth) + ")"});
  summary.add_row({"request latency (all)",
                   pctl(obs::metrics().histogram("serve.request_us"))});
  summary.add_row({"events logged", std::to_string(obs::events().total())});
  {
    const obs::FlightRecorder& fr = obs::FlightRecorder::instance();
    summary.add_row(
        {"flight records",
         fr.enabled() ? std::to_string(fr.records_written()) + " (" +
                            std::to_string(fr.records_suppressed()) +
                            " suppressed)"
                      : std::string("off (--flight-dir)")});
  }
  std::printf("\n%s", summary.render().c_str());

  if (!opts.json_path.empty()) {
    obs::Json doc = obs::Json::object();
    doc.set("schema", "brickdl-serve-bench-v1");
    doc.set("service_us", service_us);
    doc.set("overload", opts.overload);
    doc.set("burst", burst);
    doc.set("bursts", bursts);
    doc.set("max_queue_depth", sopts.max_queue_depth);
    doc.set("max_depth_seen", max_depth_seen);
    obs::Json classes = obs::Json::object();
    for (int cls = 0; cls < 2; ++cls) {
      const ClassStats& s = stats[cls];
      obs::Json c = obs::Json::object();
      c.set("deadline_us", cls_deadline[cls]);
      c.set("submitted", s.submitted);
      c.set("served", s.served);
      c.set("shed", s.shed);
      c.set("failed", s.failed);
      c.set("slo_pct", s.slo_pct);
      c.set("p50_us", s.p50);
      c.set("p95_us", s.p95);
      c.set("p99_us", s.p99);
      classes.set(cls_name[cls], std::move(c));
    }
    doc.set("classes", std::move(classes));
    const obs::Histogram& lat = obs::metrics().histogram("serve.request_us");
    obs::Json all = obs::Json::object();
    all.set("count", static_cast<i64>(lat.count()));
    all.set("p50_us", lat.percentile(0.50));
    all.set("p95_us", lat.percentile(0.95));
    all.set("p99_us", lat.percentile(0.99));
    doc.set("request_us", std::move(all));
    if (!write_text_file(opts.json_path, doc.dump(1) + "\n")) {
      std::fprintf(stderr, "cannot write stats to '%s'\n",
                   opts.json_path.c_str());
      return 1;
    }
    std::printf("stats: %s (brickdl-serve-bench-v1)\n",
                opts.json_path.c_str());
  }

  if (sopts.max_queue_depth > 0 && max_depth_seen > sopts.max_queue_depth) {
    std::fprintf(stderr,
                 "FAIL: observed queue depth %lld exceeds max_queue_depth "
                 "%lld\n",
                 static_cast<long long>(max_depth_seen),
                 static_cast<long long>(sopts.max_queue_depth));
    return 1;
  }
  if (failed > 0) {
    std::fprintf(stderr, "FAIL: %d request(s) failed with non-shed status\n",
                 failed);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Empty string (never nullptr) when the value is missing, so the numeric
    // parses below stay crash-free; the flag loop then falls out to usage().
    auto next = [&]() -> const char* {
      if (i + 1 < argc) return argv[++i];
      missing_value = true;
      return "";
    };
    if (arg == "--demo") {
      opts.demo = std::atoi(next());
    } else if (arg == "--overload") {
      opts.overload = std::atof(next());
    } else if (arg == "--duration-ms") {
      opts.duration_ms = std::atol(next());
    } else if (arg == "--drain-ms") {
      opts.drain_ms = std::atol(next());
    } else if (arg == "--layers") {
      opts.layers = std::atoi(next());
    } else if (arg == "--spatial") {
      opts.spatial = std::atol(next());
    } else if (arg == "--channels") {
      opts.channels = std::atol(next());
    } else if (arg == "--max-batch") {
      opts.serve.max_batch = std::atoi(next());
    } else if (arg == "--max-wait-us") {
      opts.serve.max_wait_us = std::atol(next());
    } else if (arg == "--max-rows") {
      opts.serve.max_batch_rows = std::atol(next());
    } else if (arg == "--budget") {
      opts.serve.footprint_budget = std::atol(next());
    } else if (arg == "--queue-depth") {
      opts.serve.max_queue_depth = std::atol(next());
      opts.queue_depth_set = true;
    } else if (arg == "--deadline-us") {
      opts.serve.default_deadline_us = std::atol(next());
    } else if (arg == "--breaker-k") {
      opts.serve.breaker_failures = std::atoi(next());
    } else if (arg == "--breaker-cooldown") {
      opts.serve.breaker_cooldown = std::atoi(next());
    } else if (arg == "--workers") {
      opts.serve.backend_workers = std::atoi(next());
    } else if (arg == "--seed") {
      opts.seed = static_cast<u64>(std::atoll(next()));
    } else if (arg == "--fast") {
      opts.fast = true;
    } else if (arg == "--strategy") {
      const char* s = next();
      if (std::strcmp(s, "padded") == 0) {
        opts.serve.engine.force_strategy = Strategy::kPadded;
      } else if (std::strcmp(s, "memoized") == 0) {
        opts.serve.engine.force_strategy = Strategy::kMemoized;
      } else if (std::strcmp(s, "wavefront") == 0) {
        opts.serve.engine.force_strategy = Strategy::kWavefront;
      } else {
        return usage();
      }
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      opts.trace_path =
          arg.size() > 8 ? arg.substr(8) : std::string("serve_trace.json");
    } else if (arg == "--events" || arg.rfind("--events=", 0) == 0) {
      opts.events_path =
          arg.size() > 9 ? arg.substr(9) : std::string("serve_events.json");
    } else if (arg == "--metrics-out") {
      opts.metrics_out = next();
    } else if (arg == "--prom") {
      opts.prom_path = next();
    } else if (arg == "--flight-dir") {
      opts.flight_dir = next();
    } else if (arg == "--json") {
      opts.json_path = next();
    } else if (arg == "--plan-cache") {
      opts.serve.engine.plan_cache_dir = next();
    } else if (arg == "--calibration") {
      const std::string path = next();
      std::ifstream in(path);
      std::ostringstream text;
      text << in.rdbuf();
      if (!in) {
        std::fprintf(stderr, "cannot read calibration file '%s'\n",
                     path.c_str());
        return 1;
      }
      Status st;
      Result<obs::Json> doc = obs::Json::parse(text.str());
      if (!doc.ok()) {
        st = doc.status();
      } else {
        Result<obs::CalibratedConstants> cal =
            obs::calibration_from_json(doc.value());
        if (cal.ok()) {
          opts.serve.engine.partition.calibration = cal.value();
        } else {
          st = cal.status();
        }
      }
      if (!st.ok()) {
        std::fprintf(stderr, "invalid calibration '%s': %s\n", path.c_str(),
                     st.to_string().c_str());
        return 1;
      }
    } else if (!arg.empty() && arg[0] != '-' && opts.trace_file.empty()) {
      opts.trace_file = arg;
    } else {
      return usage();
    }
  }
  if (missing_value) return usage();
  if (opts.trace_file.empty() && opts.demo <= 0 && opts.overload <= 0.0) {
    return usage();
  }

  const Graph model = build_conv_chain_2d(opts.layers, /*batch=*/1,
                                          opts.spatial, opts.channels);

  if (!opts.trace_path.empty()) {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  if (!opts.flight_dir.empty()) {
    obs::FlightRecorder::Options fopts;
    fopts.dir = opts.flight_dir;
    obs::FlightRecorder::instance().configure(fopts);
  }
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!opts.metrics_out.empty() || !opts.prom_path.empty()) {
    obs::MetricsExporter::Options eopts;
    eopts.interval_ms = 200;
    eopts.jsonl_path = opts.metrics_out;
    eopts.prom_path = opts.prom_path;
    exporter = std::make_unique<obs::MetricsExporter>(std::move(eopts));
    exporter->start();
  }

  if (opts.overload > 0.0) {
    std::printf("%s: %d nodes, input %s, overload mode\n",
                model.name().c_str(), model.num_nodes(),
                model.node(0).out_shape.dims.str().c_str());
    const int rc = run_overload(model, opts);
    if (!finalize_telemetry(opts, exporter.get())) return rc != 0 ? rc : 1;
    return rc;
  }

  std::vector<TraceEntry> trace;
  if (!opts.trace_file.empty()) {
    if (!parse_trace(opts.trace_file, trace)) return 1;
  } else {
    trace = demo_trace(opts.demo, opts.seed);
  }

  std::printf("%s: %d nodes, input %s, %zu request(s)\n",
              model.name().c_str(), model.num_nodes(),
              model.node(0).out_shape.dims.str().c_str(), trace.size());

  obs::metrics().reset();

  WeightStore weights(opts.seed);
  serve::Server server(model, weights, opts.serve);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<serve::RequestResult>> futures;
  futures.reserve(trace.size());
  for (const TraceEntry& entry : trace) {
    if (!opts.fast) {
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(entry.offset_us));
    }
    futures.push_back(
        server.submit(make_request(model, entry.rows, entry.seed)));
  }

  // In replay mode every request is expected to be served: a shed request
  // (overload/deadline policies armed via the knobs) is still a failed
  // replay, but is reported under its own count.
  int failed = 0;
  int shed = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const serve::RequestResult result = futures[i].get();
    if (!result.status.ok()) {
      ++failed;
      if (result.shed) ++shed;
      std::fprintf(stderr, "request %zu %s: %s\n", i,
                   result.shed ? "shed" : "failed",
                   result.status.to_string().c_str());
    }
  }
  server.shutdown();

  obs::MetricsRegistry& m = obs::metrics();
  TextTable table({"metric", "value"});
  table.add_row({"requests", std::to_string(trace.size())});
  table.add_row({"completed", std::to_string(m.counter("serve.completed").value())});
  table.add_row({"failed", std::to_string(m.counter("serve.failed").value())});
  table.add_row({"rejected", std::to_string(m.counter("serve.rejected").value())});
  add_shed_rows(table);
  table.add_row({"flushes", std::to_string(m.counter("serve.flushes").value())});
  table.add_row({"batches", std::to_string(m.counter("serve.batches").value())});
  table.add_row({"splits", std::to_string(m.counter("serve.splits").value())});
  table.add_row(
      {"plan cache hit/miss",
       std::to_string(m.counter("serve.plan_cache_hits").value()) + "/" +
           std::to_string(m.counter("serve.plan_cache_misses").value())});
  const obs::Histogram& occupancy = m.histogram("serve.batch_occupancy");
  table.add_row({"batch occupancy",
                 "mean " + TextTable::num(occupancy.mean()) + ", max " +
                     std::to_string(occupancy.max())});
  const obs::Histogram& rows = m.histogram("serve.batch_rows");
  table.add_row({"stacked rows", "mean " + TextTable::num(rows.mean()) +
                                     ", max " + std::to_string(rows.max())});
  table.add_row({"coalesce latency", pctl(m.histogram("serve.coalesce_us"))});
  table.add_row({"run latency", pctl(m.histogram("serve.run_us"))});
  table.add_row({"request latency", pctl(m.histogram("serve.request_us"))});
  std::printf("\n%s", table.render().c_str());

  if (!finalize_telemetry(opts, exporter.get())) return 1;
  if (shed > 0) {
    std::fprintf(stderr, "%d replayed request(s) shed (see summary)\n", shed);
  }
  return failed == 0 ? 0 : 1;
}
