#!/usr/bin/env bash
# Sanitizer matrix for the concurrency-sensitive and fuzzed code paths.
#
#   1. ThreadSanitizer:   memoized executor (run_parallel CAS protocol),
#                         wavefront executor, thread pool, the resilience
#                         suite (stall watchdog, tag repair, fault injection),
#                         the observability suite (concurrent metrics,
#                         trace ring buffers, mid-run stats snapshots), the
#                         serving suite (submitter threads racing the batch
#                         scheduler), the pipelining suite (chained tag
#                         tables shared by real worker threads, the serving
#                         runner-pool/scheduler handoff), the
#                         greedy-partitioner property suite (shared metrics
#                         registry traffic), and the plan-cache suite
#                         (concurrent warm-start readers racing a writer
#                         through the atomic tmp+rename publish).
#   2. ASan + UBSan:      the differential fuzz suite (random graphs through
#                         every executor variant, paper and greedy
#                         partitioners) plus the resilience, observability,
#                         serving, partition, and plan-cache suites (includes
#                         the malformed-parse corpus, JSON parse-back, and
#                         the poisoned-cache-entry rejection paths).
#   3. Release (-O3 -DNDEBUG): the differential + perf (fast-path vs generic
#                         kernel, plus the fig07 paper-vs-greedy partition
#                         A/B gate) + obs (unit suite plus the CLI and
#                         serving-telemetry end-to-end smokes, which validate
#                         every exported artifact) labels at the optimization
#                         level the fast paths ship at — vectorized interior
#                         loops can behave differently from -O0/-O1
#                         sanitizer builds.
#
# Usage: tools/ci_sanitize.sh [source-dir]
# Build trees land in <source-dir>/build-tsan, <source-dir>/build-asan and
# <source-dir>/build-release.
# STAGES selects a subset (space-separated: tsan asan release; default all) —
# this is how .github/workflows/ci.yml runs each stage as its own job.
# Also registered as CTest test `sanitize_suite` (label `sanitize`) when the
# tree is configured with -DBRICKDL_SANITIZE_CI=ON.
set -euo pipefail

SRC_DIR=$(cd "${1:-$(dirname "$0")/..}" && pwd)
JOBS=${JOBS:-$(nproc)}
STAGES=${STAGES:-"tsan asan release"}

run_stage() { [[ " $STAGES " == *" $1 "* ]]; }

if run_stage tsan; then
  echo "== [tsan] ThreadSanitizer: memoized / wavefront / thread-pool / resilience / obs / serve / pipeline / partition / plan-cache =="
  cmake -B "$SRC_DIR/build-tsan" -S "$SRC_DIR" -DBRICKDL_SANITIZE=thread
  cmake --build "$SRC_DIR/build-tsan" -j "$JOBS" \
        --target brickdl_tests --target brickdl_resilience_tests \
        --target brickdl_obs_tests --target brickdl_serve_tests \
        --target brickdl_pipeline_tests --target brickdl_partition_tests \
        --target brickdl_plan_cache_tests
  ctest --test-dir "$SRC_DIR/build-tsan" --output-on-failure --timeout 600 \
        -R 'MemoizedExecutor|Wavefront|ThreadPool|Resilience|Obs|Serve|Pipeline|GreedyPartitioner|PlanCache'
fi

if run_stage asan; then
  echo "== [asan] ASan+UBSan: differential fuzz + resilience + obs + serve + pipeline + partition + plan-cache suites =="
  cmake -B "$SRC_DIR/build-asan" -S "$SRC_DIR" -DBRICKDL_SANITIZE=address,undefined
  cmake --build "$SRC_DIR/build-asan" -j "$JOBS" \
        --target brickdl_differential_tests --target brickdl_resilience_tests \
        --target brickdl_obs_tests --target brickdl_serve_tests \
        --target brickdl_pipeline_tests --target brickdl_partition_tests \
        --target brickdl_plan_cache_tests \
        --target mb_kernels --target fig07_partition_ab \
        --target brickdl_serve --target brickdl_report_check
  # obs_smoke and plan_cache_smoke (the CLI end-to-end runs) are excluded:
  # they need the CLI binaries and are far too slow under ASan; the unit
  # suites cover the same code paths. perf = the fast-path-vs-generic kernel
  # sweeps + mb_kernels smoke: cheap, and exactly where an interior-loop
  # indexing bug would surface. partition adds the greedy property sweep and
  # the fig07 partition A/B gate; plan_cache adds the cold/warm parity and
  # cache-poisoning suite.
  ctest --test-dir "$SRC_DIR/build-asan" --output-on-failure --timeout 600 \
        -L 'differential|resilience|obs|perf|serve|pipeline|partition|plan_cache' \
        -E 'obs_smoke|plan_cache_smoke'
fi

if run_stage release; then
  echo "== [release] Release -O3 -DNDEBUG: differential + perf + obs labels (incl. fig07 partition A/B gate, telemetry smokes) =="
  cmake -B "$SRC_DIR/build-release" -S "$SRC_DIR" \
        -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_FLAGS_RELEASE="-O3 -DNDEBUG"
  cmake --build "$SRC_DIR/build-release" -j "$JOBS" \
        --target brickdl_differential_tests --target mb_kernels \
        --target fig07_partition_ab --target brickdl_serve \
        --target brickdl_obs_tests --target brickdl_cli \
        --target brickdl_report_check
  # perf includes serve_overload_smoke: the open-loop overload run (bounded
  # queue, shed taxonomy, drain) at the optimization level serving ships at.
  # obs adds the unit suite plus obs_smoke, serve_telemetry_smoke, and
  # plan_cache_smoke — the end-to-end artifact checks (trace flow links,
  # Prometheus/JSONL export, event log, flight records, plan-cache cold/warm
  # parity + calibration fit) run at Release speed, where they are cheap.
  ctest --test-dir "$SRC_DIR/build-release" --output-on-failure --timeout 600 \
        -L 'differential|perf|obs'
fi

echo "sanitizer matrix passed (stages: $STAGES)"
