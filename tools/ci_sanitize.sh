#!/usr/bin/env bash
# Sanitizer matrix for the concurrency-sensitive and fuzzed code paths.
#
#   1. ThreadSanitizer:   memoized executor (run_parallel CAS protocol),
#                         wavefront executor, thread pool.
#   2. ASan + UBSan:      the differential fuzz suite (random graphs through
#                         every executor variant).
#
# Usage: tools/ci_sanitize.sh [source-dir]
# Build trees land in <source-dir>/build-tsan and <source-dir>/build-asan.
# Also registered as CTest test `sanitize_suite` (label `sanitize`) when the
# tree is configured with -DBRICKDL_SANITIZE_CI=ON.
set -euo pipefail

SRC_DIR=$(cd "${1:-$(dirname "$0")/..}" && pwd)
JOBS=${JOBS:-$(nproc)}

echo "== [1/2] ThreadSanitizer: memoized / wavefront / thread-pool tests =="
cmake -B "$SRC_DIR/build-tsan" -S "$SRC_DIR" -DBRICKDL_SANITIZE=thread
cmake --build "$SRC_DIR/build-tsan" -j "$JOBS" --target brickdl_tests
ctest --test-dir "$SRC_DIR/build-tsan" --output-on-failure \
      -R 'MemoizedExecutor|Wavefront|ThreadPool'

echo "== [2/2] ASan+UBSan: differential fuzz suite =="
cmake -B "$SRC_DIR/build-asan" -S "$SRC_DIR" -DBRICKDL_SANITIZE=address,undefined
cmake --build "$SRC_DIR/build-asan" -j "$JOBS" --target brickdl_differential_tests
ctest --test-dir "$SRC_DIR/build-asan" --output-on-failure -L differential

echo "sanitizer matrix passed"
