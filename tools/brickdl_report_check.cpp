// brickdl_report_check — schema-validate observability artifacts.
//
//   brickdl_report_check [--report r.json] [--trace t.json]
//                        [--flight f.json] [--calibration c.json]
//
// Parses the files back through the same obs::Json implementation that wrote
// them and runs the structural validators (obs::validate_run_report,
// obs::validate_chrome_trace, obs::validate_flight_record,
// obs::validate_calibration). Unknown schema versions are a named failure
// (kUnknownSchema), not a structural one. Exit 0 only when every given
// artifact is well-formed; bench/smoke_report.sh and the `obs_smoke` CTest
// drive this against fresh brickdl_cli output,
// bench/smoke_serve_telemetry.sh against brickdl_serve output, and
// bench/smoke_plan_cache.sh against the calibration emitted by
// `brickdl_cli --calibrate-out`.
#include <cstdio>
#include <string>

#include "obs/calibrate.hpp"
#include "obs/flight.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

using namespace brickdl;

namespace {

int fail(const std::string& what, const Status& status) {
  std::fprintf(stderr, "brickdl_report_check: %s: %s\n", what.c_str(),
               status.to_string().c_str());
  return 1;
}

Result<obs::Json> read_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Status(StatusCode::kInvalidGraph, "cannot open '" + path + "'");
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return obs::Json::parse(text);
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  std::string trace_path;
  std::string flight_path;
  std::string calibration_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--report") {
      const char* v = next();
      if (!v) break;
      report_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) break;
      trace_path = v;
    } else if (arg == "--flight") {
      const char* v = next();
      if (!v) break;
      flight_path = v;
    } else if (arg == "--calibration") {
      const char* v = next();
      if (!v) break;
      calibration_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: brickdl_report_check [--report r.json] "
                   "[--trace t.json] [--flight f.json] "
                   "[--calibration c.json]\n");
      return 2;
    }
  }
  if (report_path.empty() && trace_path.empty() && flight_path.empty() &&
      calibration_path.empty()) {
    std::fprintf(stderr, "brickdl_report_check: nothing to check\n");
    return 2;
  }

  if (!report_path.empty()) {
    Result<obs::Json> doc = read_json(report_path);
    if (!doc.ok()) return fail(report_path, doc.status());
    const Status status = obs::validate_run_report(doc.value());
    if (!status.ok()) return fail(report_path, status);
    std::printf("ok: %s (%zu subgraphs)\n", report_path.c_str(),
                doc.value().find("subgraphs")->size());
  }
  if (!trace_path.empty()) {
    Result<obs::Json> doc = read_json(trace_path);
    if (!doc.ok()) return fail(trace_path, doc.status());
    const Status status = obs::validate_chrome_trace(doc.value());
    if (!status.ok()) return fail(trace_path, status);
    std::printf("ok: %s (%zu events)\n", trace_path.c_str(),
                doc.value().find("traceEvents")->size());
  }
  if (!flight_path.empty()) {
    Result<obs::Json> doc = read_json(flight_path);
    if (!doc.ok()) return fail(flight_path, doc.status());
    const Status status = obs::validate_flight_record(doc.value());
    if (!status.ok()) return fail(flight_path, status);
    std::printf("ok: %s (trigger %s, %zu events)\n", flight_path.c_str(),
                doc.value().find("trigger")->str().c_str(),
                doc.value().find("events")->size());
  }
  if (!calibration_path.empty()) {
    Result<obs::Json> doc = read_json(calibration_path);
    if (!doc.ok()) return fail(calibration_path, doc.status());
    const Status status = obs::validate_calibration(doc.value());
    if (!status.ok()) return fail(calibration_path, status);
    const obs::Json* residuals = doc.value().find("residuals");
    std::printf("ok: %s (%lld samples, rel error %.4g -> %.4g)\n",
                calibration_path.c_str(),
                static_cast<long long>(doc.value().find("samples")->number()),
                residuals->find("stock_mean_rel_error")->number(),
                residuals->find("calibrated_mean_rel_error")->number());
  }
  return 0;
}
