#!/usr/bin/env python3
"""Perf-regression gate over the committed mb_kernels baseline.

Runs ``bench/mb_kernels --quick --json`` (or reads a pre-recorded result via
``--current``) and compares it against the committed ``BENCH_kernels.json``.

Absolute ns/call is host-dependent — a laptop and a CI runner disagree by
integer factors — so the gate compares *speedup ratios*, which the baseline
exists to defend:

  * ``<kernel>/<region>``: generic ns / fast ns — the fast-path speedup the
    PR 4 kernels claim. A fast path that silently falls back to the generic
    loop drives this toward 1x and fails the gate.
  * ``parallel_for/grainN``: grain1 ns / grainN ns — the chunking win over
    per-index dispatch.

A pair regresses when its current speedup drops below ``baseline * (1 -
tolerance)`` (default tolerance 0.25, i.e. +/-25 percent; improvements never
fail). Exit status: 0 clean, 1 regression or missing pair, 2 usage/setup
error.

Usage:
  tools/ci_bench_check.py --bench build/bench/mb_kernels
  tools/ci_bench_check.py --current run.json [--baseline BENCH_kernels.json]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_results(path):
    """Return {name: ns_per_call} from an mb_kernels JSON dump."""
    with open(path) as f:
        doc = json.load(f)
    results = {}
    for entry in doc.get("results", []):
        results[entry["name"]] = float(entry["ns_per_call"])
    if not results:
        raise ValueError(f"{path}: no results")
    return results


def speedup_pairs(results):
    """Yield (label, slow_ns, fast_ns) ratio pairs present in `results`."""
    for name, ns in sorted(results.items()):
        if name.endswith("/generic"):
            fast = name[: -len("generic")] + "fast"
            if fast in results:
                yield (name[: -len("/generic")], ns, results[fast])
        elif name.startswith("parallel_for/grain") and name != "parallel_for/grain1":
            base = results.get("parallel_for/grain1")
            if base is not None:
                yield (name, base, ns)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", help="mb_kernels binary to run (--quick mode)")
    parser.add_argument("--current", help="pre-recorded mb_kernels JSON (skips running)")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json"),
        help="committed baseline JSON (default: repo BENCH_kernels.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup drop before failing (default 0.25)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if bool(args.bench) == bool(args.current):
        parser.error("exactly one of --bench / --current is required")

    current_path = args.current
    tmp = None
    if args.bench:
        tmp = tempfile.NamedTemporaryFile(suffix=".json", delete=False)
        tmp.close()
        current_path = tmp.name
        cmd = [args.bench, "--quick", "--json", current_path]
        print("running:", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            print(f"FAIL: {args.bench} exited {proc.returncode}", file=sys.stderr)
            return 2

    try:
        baseline = load_results(args.baseline)
        current = load_results(current_path)
    finally:
        if tmp is not None:
            os.unlink(tmp.name)

    base_pairs = {label: slow / fast for label, slow, fast in speedup_pairs(baseline)}
    cur_pairs = {label: slow / fast for label, slow, fast in speedup_pairs(current)}

    failures = 0
    width = max(len(label) for label in base_pairs) if base_pairs else 0
    print(f"{'pair':<{width}}  {'baseline':>9}  {'current':>9}  verdict")
    for label, base_speedup in sorted(base_pairs.items()):
        cur_speedup = cur_pairs.get(label)
        if cur_speedup is None:
            print(f"{label:<{width}}  {base_speedup:>8.2f}x  {'missing':>9}  FAIL")
            failures += 1
            continue
        floor = base_speedup * (1.0 - args.tolerance)
        ok = cur_speedup >= floor
        verdict = "ok" if ok else f"FAIL (floor {floor:.2f}x)"
        print(f"{label:<{width}}  {base_speedup:>8.2f}x  {cur_speedup:>8.2f}x  {verdict}")
        failures += 0 if ok else 1

    if failures:
        print(f"\n{failures} speedup pair(s) regressed more than "
              f"{args.tolerance:.0%} vs {args.baseline}", file=sys.stderr)
        return 1
    print(f"\nbench gate clean: {len(base_pairs)} pair(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
