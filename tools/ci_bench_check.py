#!/usr/bin/env python3
"""Perf-regression gate over the committed mb_kernels baseline.

Runs ``bench/mb_kernels --quick --json`` (or reads a pre-recorded result via
``--current``) and compares it against the committed ``BENCH_kernels.json``.

Absolute ns/call is host-dependent — a laptop and a CI runner disagree by
integer factors — so the gate compares *speedup ratios*, which the baseline
exists to defend:

  * ``<kernel>/<region>``: generic ns / fast ns — the fast-path speedup the
    PR 4 kernels claim. A fast path that silently falls back to the generic
    loop drives this toward 1x and fails the gate.
  * ``parallel_for/grainN``: grain1 ns / grainN ns — the chunking win over
    per-index dispatch.

A pair regresses when its current speedup drops below ``baseline * (1 -
tolerance)`` (default tolerance 0.25, i.e. +/-25 percent; improvements never
fail). Exit status: 0 clean, 1 regression or missing pair, 2 usage/setup
error.

``--serve-current`` additionally (or standalone) compares a
``brickdl-serve-bench-v1`` document — written by ``brickdl_serve --overload
... --json`` — against the committed ``BENCH_serve.json``. Serving latency is
even more host- and load-sensitive than kernel timings, so only
host-independent ratios are compared (per-class p99 normalized by the run's
own measured service time, and SLO attainment), and the serve gate is
**advisory**: verdicts are printed but never affect the exit status.

``--calibration`` additionally (or standalone) reads a
``brickdl-calibration-v1`` document — written by ``brickdl_cli
--calibrate-out`` — and reports the cost model's mean relative prediction
error at the stock constants vs the fitted ones (the ``residuals`` block the
fit certifies itself with). Like the serve gate this is **advisory**: the
fit's take-best selection already guarantees calibrated ≤ stock on its own
corpus, so a regression here means the artifact pipeline is broken, which
the schema validation (``brickdl_report_check --calibration``) hard-fails
elsewhere; this comparison just surfaces how much headroom calibration is
buying on the CI model.

Usage:
  tools/ci_bench_check.py --bench build/bench/mb_kernels
  tools/ci_bench_check.py --current run.json [--baseline BENCH_kernels.json]
  tools/ci_bench_check.py --serve-current stats.json [--serve-baseline BENCH_serve.json]
  tools/ci_bench_check.py --calibration cal.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_results(path):
    """Return {name: ns_per_call} from an mb_kernels JSON dump."""
    with open(path) as f:
        doc = json.load(f)
    results = {}
    for entry in doc.get("results", []):
        results[entry["name"]] = float(entry["ns_per_call"])
    if not results:
        raise ValueError(f"{path}: no results")
    return results


def speedup_pairs(results):
    """Yield (label, slow_ns, fast_ns) ratio pairs present in `results`."""
    for name, ns in sorted(results.items()):
        if name.endswith("/generic"):
            fast = name[: -len("generic")] + "fast"
            if fast in results:
                yield (name[: -len("/generic")], ns, results[fast])
        elif name.startswith("parallel_for/grain") and name != "parallel_for/grain1":
            base = results.get("parallel_for/grain1")
            if base is not None:
                yield (name, base, ns)


def load_serve(path):
    """Return a validated brickdl-serve-bench-v1 document."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "brickdl-serve-bench-v1":
        raise ValueError(f"{path}: expected schema brickdl-serve-bench-v1, "
                         f"got {doc.get('schema')!r}")
    return doc


def serve_ratios(doc):
    """Host-independent serving ratios from a brickdl-serve-bench-v1 doc.

    Latencies are normalized by the run's own measured per-request service
    time, so a slow CI runner shifts numerator and denominator together.
    ``slo_pct`` is already dimensionless. Ratios whose label ends in
    ``slo_pct`` are higher-is-better; the rest are lower-is-better.
    """
    service = float(doc.get("service_us", 0.0))
    ratios = {}
    for cls, stats in sorted(doc.get("classes", {}).items()):
        if service > 0.0 and int(stats.get("served", 0)) > 0:
            ratios[f"{cls}/p99_over_service"] = float(stats["p99_us"]) / service
        ratios[f"{cls}/slo_pct"] = float(stats.get("slo_pct", 0.0))
    req = doc.get("request_us", {})
    if service > 0.0 and int(req.get("count", 0)) > 0:
        ratios["all/p99_over_service"] = float(req["p99_us"]) / service
    return ratios


def check_serve(baseline_path, current_path, tolerance):
    """Advisory serve comparison: prints verdicts, never fails the gate."""
    baseline = serve_ratios(load_serve(baseline_path))
    current = serve_ratios(load_serve(current_path))
    labels = sorted(baseline)
    width = max(len(label) for label in labels) if labels else 0
    print(f"\nserve gate (advisory, vs {baseline_path}):")
    print(f"{'ratio':<{width}}  {'baseline':>9}  {'current':>9}  verdict")
    regressions = 0
    for label in labels:
        base = baseline[label]
        cur = current.get(label)
        if cur is None:
            print(f"{label:<{width}}  {base:>9.3f}  {'missing':>9}  ADVISORY")
            regressions += 1
            continue
        if label.endswith("slo_pct"):
            # Higher is better; absolute percentage-point slack scaled by
            # the tolerance (SLO near 0% would make a relative floor vacuous).
            ok = cur >= base - 100.0 * tolerance
        else:
            ok = cur <= base * (1.0 + tolerance)
        verdict = "ok" if ok else "ADVISORY regression"
        print(f"{label:<{width}}  {base:>9.3f}  {cur:>9.3f}  {verdict}")
        regressions += 0 if ok else 1
    if regressions:
        print(f"serve gate: {regressions} advisory regression(s) beyond "
              f"{tolerance:.0%} — not failing the build")
    else:
        print(f"serve gate clean: {len(labels)} ratio(s) within "
              f"{tolerance:.0%} of baseline")


def check_calibration(path):
    """Advisory calibrated-vs-stock prediction-error comparison.

    Reads the residuals a ``brickdl-calibration-v1`` fit certifies itself
    with. Prints the improvement; never affects the exit status.
    """
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "brickdl-calibration-v1":
        raise ValueError(f"{path}: expected schema brickdl-calibration-v1, "
                         f"got {doc.get('schema')!r}")
    residuals = doc.get("residuals", {})
    stock = float(residuals["stock_mean_rel_error"])
    calibrated = float(residuals["calibrated_mean_rel_error"])
    samples = int(doc.get("samples", 0))
    print(f"\ncalibration gate (advisory, {path}, {samples} sample(s)):")
    print(f"  mean relative prediction error: stock {stock:.4f} -> "
          f"calibrated {calibrated:.4f}")
    if calibrated <= stock:
        if stock > 0.0:
            print(f"  ok: calibration cuts prediction error by "
                  f"{(1.0 - calibrated / stock):.0%}")
        else:
            print("  ok: stock model already exact on this corpus")
    else:
        # The fit's take-best selection makes this unreachable from a healthy
        # pipeline; reaching it means the artifact was produced by something
        # else (or hand-edited), so flag loudly but stay advisory.
        print("  ADVISORY regression: calibrated residual exceeds stock — "
              "not failing the build")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", help="mb_kernels binary to run (--quick mode)")
    parser.add_argument("--current", help="pre-recorded mb_kernels JSON (skips running)")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json"),
        help="committed baseline JSON (default: repo BENCH_kernels.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup drop before failing (default 0.25)",
    )
    parser.add_argument(
        "--serve-current",
        help="brickdl-serve-bench-v1 JSON from brickdl_serve --overload --json "
             "(advisory comparison; may be the only input)",
    )
    parser.add_argument(
        "--serve-baseline",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json"),
        help="committed serve baseline JSON (default: repo BENCH_serve.json)",
    )
    parser.add_argument(
        "--calibration",
        help="brickdl-calibration-v1 JSON from brickdl_cli --calibrate-out "
             "(advisory calibrated-vs-stock residual report; may be the only "
             "input)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.bench and args.current:
        parser.error("at most one of --bench / --current is allowed")
    if not (args.bench or args.current or args.serve_current
            or args.calibration):
        parser.error("one of --bench / --current / --serve-current / "
                     "--calibration is required")

    if args.serve_current:
        check_serve(args.serve_baseline, args.serve_current, args.tolerance)
    if args.calibration:
        check_calibration(args.calibration)
    if not (args.bench or args.current):
        return 0

    current_path = args.current
    tmp = None
    if args.bench:
        tmp = tempfile.NamedTemporaryFile(suffix=".json", delete=False)
        tmp.close()
        current_path = tmp.name
        cmd = [args.bench, "--quick", "--json", current_path]
        print("running:", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            print(f"FAIL: {args.bench} exited {proc.returncode}", file=sys.stderr)
            return 2

    try:
        baseline = load_results(args.baseline)
        current = load_results(current_path)
    finally:
        if tmp is not None:
            os.unlink(tmp.name)

    base_pairs = {label: slow / fast for label, slow, fast in speedup_pairs(baseline)}
    cur_pairs = {label: slow / fast for label, slow, fast in speedup_pairs(current)}

    failures = 0
    width = max(len(label) for label in base_pairs) if base_pairs else 0
    print(f"{'pair':<{width}}  {'baseline':>9}  {'current':>9}  verdict")
    for label, base_speedup in sorted(base_pairs.items()):
        cur_speedup = cur_pairs.get(label)
        if cur_speedup is None:
            print(f"{label:<{width}}  {base_speedup:>8.2f}x  {'missing':>9}  FAIL")
            failures += 1
            continue
        floor = base_speedup * (1.0 - args.tolerance)
        ok = cur_speedup >= floor
        verdict = "ok" if ok else f"FAIL (floor {floor:.2f}x)"
        print(f"{label:<{width}}  {base_speedup:>8.2f}x  {cur_speedup:>8.2f}x  {verdict}")
        failures += 0 if ok else 1

    if failures:
        print(f"\n{failures} speedup pair(s) regressed more than "
              f"{args.tolerance:.0%} vs {args.baseline}", file=sys.stderr)
        return 1
    print(f"\nbench gate clean: {len(base_pairs)} pair(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
